package query

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
)

// testMarginal builds the gamma-diagonal marginal for a sub-domain of
// size nSub inside a full domain of size n.
func testMarginal(t *testing.T, n, nSub int, gamma float64) core.UniformMatrix {
	t.Helper()
	m, err := core.NewGammaDiagonal(n, gamma)
	if err != nil {
		t.Fatal(err)
	}
	marg, err := m.Marginal(nSub)
	if err != nil {
		t.Fatal(err)
	}
	return marg
}

func TestReconstructZeroRecordCounter(t *testing.T) {
	marg := testMarginal(t, 24, 6, 19)
	for _, n := range []int{0, -1} {
		if _, err := Reconstruct(3, n, marg); !errors.Is(err, ErrQuery) {
			t.Errorf("n=%d: err %v, want ErrQuery", n, err)
		}
	}
}

// TestReconstructDegenerateSubdomainSizeOne: the marginal onto a
// sub-domain of size 1 (the empty attribute set) maps every record to
// the only cell with probability 1 — d̄ = 1, ō = N·off — so y = n must
// reconstruct to exactly n with zero residual against exactEstimate.
func TestReconstructDegenerateSubdomainSizeOne(t *testing.T) {
	marg := testMarginal(t, 24, 1, 19)
	if math.Abs(marg.Diag-1) > 1e-12 {
		t.Fatalf("size-1 marginal diag %v, want 1 (row-stochastic)", marg.Diag)
	}
	const n = 1000
	est, err := Reconstruct(n, n, marg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Count-n) > 1e-9 {
		t.Fatalf("count %v, want exactly %v", est.Count, float64(n))
	}
	// p̂ = 1 ⇒ the Bernoulli variance term vanishes: a zero-width CI,
	// matching the exactEstimate fast path the engines use.
	if est.StdErr != 0 || est.Lo != est.Hi {
		t.Fatalf("degenerate estimate has nonzero width: %+v", est)
	}
	exact := exactEstimate(n)
	if math.Abs(est.Count-exact.Count) > 1e-9 || est.N != exact.N {
		t.Fatalf("Reconstruct %+v differs from exactEstimate %+v", est, exact)
	}
}

// TestReconstructNearSingularInversion: as γ → 1 the matrix approaches
// uniform (d̄ − ō → 0) and the inversion must blow up the STANDARD
// ERROR — honestly reporting that a near-singular contract carries
// almost no information — while a singular marginal errors out rather
// than dividing by zero.
func TestReconstructNearSingularInversion(t *testing.T) {
	const n = 10000
	y := 400.0
	var prevStdErr float64
	for i, gamma := range []float64{19, 2, 1.05, 1.0005} {
		marg := testMarginal(t, 24, 6, gamma)
		est, err := Reconstruct(y, n, marg)
		if err != nil {
			t.Fatalf("gamma=%v: %v", gamma, err)
		}
		if math.IsNaN(est.Count) || math.IsInf(est.Count, 0) || math.IsNaN(est.StdErr) {
			t.Fatalf("gamma=%v: non-finite estimate %+v", gamma, est)
		}
		if i > 0 && est.StdErr <= prevStdErr {
			t.Fatalf("stderr did not grow toward singularity: %v then %v", prevStdErr, est.StdErr)
		}
		prevStdErr = est.StdErr
		if est.Lo > est.Count || est.Hi < est.Count {
			t.Fatalf("gamma=%v: CI [%v, %v] excludes its own point estimate %v", gamma, est.Lo, est.Hi, est.Count)
		}
	}

	// Exactly singular: d̄ == ō.
	singular := core.UniformMatrix{N: 6, Diag: 1.0 / 6, Off: 1.0 / 6}
	if _, err := Reconstruct(y, n, singular); !errors.Is(err, ErrQuery) {
		t.Fatalf("singular marginal err %v, want ErrQuery", err)
	}
}

// TestReconstructCIWidthMonotonicInN: at a fixed observed proportion
// p̂, the RELATIVE confidence-interval width must shrink monotonically
// as N grows (the absolute width grows like √N, the relative width
// decays like 1/√N) — more submissions always buy a tighter estimate.
func TestReconstructCIWidthMonotonicInN(t *testing.T) {
	marg := testMarginal(t, 24, 6, 19)
	const phat = 0.3
	var prevRel, prevAbs float64
	for i, n := range []int{100, 1000, 10000, 100000, 1000000} {
		est, err := Reconstruct(phat*float64(n), n, marg)
		if err != nil {
			t.Fatal(err)
		}
		abs := est.Hi - est.Lo
		rel := abs / float64(n)
		if abs <= 0 {
			t.Fatalf("n=%d: non-positive CI width %v", n, abs)
		}
		if i > 0 {
			if rel >= prevRel {
				t.Fatalf("relative CI width did not shrink: n=%d gives %v after %v", n, rel, prevRel)
			}
			if abs <= prevAbs {
				t.Fatalf("absolute CI width should grow like sqrt(N): n=%d gives %v after %v", n, abs, prevAbs)
			}
		}
		prevRel, prevAbs = rel, abs
		// The interval is symmetric about the point estimate and the
		// z-scaling of the standard error.
		if math.Abs((est.Hi+est.Lo)/2-est.Count) > 1e-6 {
			t.Fatalf("n=%d: CI not centered: %+v", n, est)
		}
	}
}

// TestReconstructMatchesHandComputation pins the closed form on one
// hand-checked instance.
func TestReconstructMatchesHandComputation(t *testing.T) {
	marg := core.UniformMatrix{N: 4, Diag: 0.7, Off: 0.1}
	y, n := 30.0, 100
	est, err := Reconstruct(y, n, marg)
	if err != nil {
		t.Fatal(err)
	}
	a := 0.7 - 0.1
	wantCount := (y - 0.1*float64(n)) / a
	phat := y / float64(n)
	wantStdErr := math.Sqrt(float64(n)*phat*(1-phat)) / a
	if math.Abs(est.Count-wantCount) > 1e-12 || math.Abs(est.StdErr-wantStdErr) > 1e-12 {
		t.Fatalf("est %+v, want count %v stderr %v", est, wantCount, wantStdErr)
	}
	if math.Abs(est.Lo-(wantCount-z95*wantStdErr)) > 1e-12 || math.Abs(est.Hi-(wantCount+z95*wantStdErr)) > 1e-12 {
		t.Fatalf("CI %+v, want z95 interval", est)
	}
	if est.N != n {
		t.Fatalf("N %d, want %d", est.N, n)
	}
}
