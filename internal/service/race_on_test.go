//go:build race

package service

// raceEnabled reports whether the race detector is compiled in; the
// detector's own bookkeeping allocates, so strict allocation-count
// assertions are meaningless under it.
const raceEnabled = true
