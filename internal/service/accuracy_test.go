package service

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/mining"
)

// TestEndToEndReconstructionAccuracy is the statistical regression gate
// for the full service pipeline: seeded generate → client-side perturb →
// HTTP ingest → async mining job → reconstructed model, compared against
// exact Apriori on the unperturbed data with the paper's Section 7
// metrics. Every stage is seeded, so the measured errors are
// deterministic; the bounds below are ~1.5–2x the observed values, loose
// enough to never flake yet tight enough that a refactor that corrupts
// reconstruction (wrong marginal, broken shard merge, stale cache entry)
// blows through them immediately.
//
// The errors are genuinely large: at γ = 19 the gamma-diagonal matrix
// over the CENSUS domain (|S_U| = 2000) retains a record's true value
// with probability ≈ 0.9%, so reconstruction subtracts an enormous
// uniform baseline — the paper's own figures report identity errors in
// the tens of percent at comparable scales. Observed at this seed
// (CENSUS n=30000, γ=19, supmin=10%):
// ρ ≈ 43%, σ+ ≈ 45%, σ− ≈ 27%, level-1 σ− ≈ 7.7%.
func TestEndToEndReconstructionAccuracy(t *testing.T) {
	const (
		n      = 30000
		minsup = 0.1
	)
	db, err := dataset.GenerateCensus(n, 2005)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := mining.Apriori(&mining.ExactCounter{DB: db}, minsup)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Counts()[0] == 0 {
		t.Fatal("trivial ground truth")
	}

	srv, err := NewServer(dataset.CensusSchema(), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	// The client perturbs locally before anything is transmitted; the
	// perturbation RNG is the only source of randomness past generation.
	rng := rand.New(rand.NewSource(7))
	const batch = 1000
	for lo := 0; lo < db.N(); lo += batch {
		hi := lo + batch
		if hi > db.N() {
			hi = db.N()
		}
		if err := client.SubmitBatch(db.Records[lo:hi], rng); err != nil {
			t.Fatal(err)
		}
	}
	if srv.N() != n {
		t.Fatalf("server holds %d records, want %d", srv.N(), n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	resp, err := client.MineAsync(ctx, MineParams{MinSupport: minsup, Limit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if resp.SnapshotVersion != n {
		t.Fatalf("mined at version %d, want %d", resp.SnapshotVersion, n)
	}
	mined := responseToResult(t, client.Schema(), resp, minsup)

	rep, err := metrics.Evaluate(truth, mined)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overall: rho=%.2f%% sigma+=%.2f%% sigma-=%.2f%% (|F|=%d |R|=%d)",
		rep.Overall.SupportError, rep.Overall.FalsePositives, rep.Overall.FalseNegatives,
		rep.Overall.TrueCount, rep.Overall.MinedCount)
	for _, l := range rep.Levels {
		t.Logf("L%d: rho=%.2f%% sigma+=%.2f%% sigma-=%.2f%% (F=%d R=%d)",
			l.Length, l.SupportError, l.FalsePositives, l.FalseNegatives, l.TrueCount, l.MinedCount)
	}
	if rep.Overall.SupportError > 70 {
		t.Fatalf("support error rho %.2f%% exceeds bound 70%%", rep.Overall.SupportError)
	}
	if rep.Overall.FalsePositives > 75 {
		t.Fatalf("identity error sigma+ %.2f%% exceeds bound 75%%", rep.Overall.FalsePositives)
	}
	if rep.Overall.FalseNegatives > 55 {
		t.Fatalf("identity error sigma- %.2f%% exceeds bound 55%%", rep.Overall.FalseNegatives)
	}
	// Singletons reconstruct through the best-conditioned marginals, so
	// level 1 must stay close to exact even where deeper levels drown in
	// noise.
	l1, ok := rep.Level(1)
	if !ok || l1.TrueCount == 0 {
		t.Fatalf("no level-1 ground truth: %+v", l1)
	}
	if l1.FalseNegatives > 20 || l1.SupportError > 60 {
		t.Fatalf("level-1 errors %+v", l1)
	}
}

// responseToResult converts the wire model back into a mining.Result so
// the paper's metrics can score it.
func responseToResult(t *testing.T, schema *dataset.Schema, resp *MineResponse, minsup float64) *mining.Result {
	t.Helper()
	attrIdx := make(map[string]int, schema.M())
	for j, a := range schema.Attrs {
		attrIdx[a.Name] = j
	}
	byLen := make(map[int][]mining.FrequentItemset)
	maxLen := 0
	for _, is := range resp.Itemsets {
		items := make([]mining.Item, 0, len(is.Items))
		for name, cat := range is.Items {
			j, ok := attrIdx[name]
			if !ok {
				t.Fatalf("unknown attribute %q in response", name)
			}
			v := schema.Attrs[j].CategoryIndex(cat)
			if v < 0 {
				t.Fatalf("unknown category %q for %q in response", cat, name)
			}
			items = append(items, mining.Item{Attr: j, Value: v})
		}
		set, err := mining.NewItemset(items...)
		if err != nil {
			t.Fatal(err)
		}
		l := set.Len()
		byLen[l] = append(byLen[l], mining.FrequentItemset{Items: set, Support: is.Support})
		if l > maxLen {
			maxLen = l
		}
	}
	res := &mining.Result{MinSupport: minsup, ByLength: make([][]mining.FrequentItemset, maxLen)}
	for l := 1; l <= maxLen; l++ {
		res.ByLength[l-1] = byLen[l]
	}
	return res
}
