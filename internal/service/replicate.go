package service

import (
	"encoding/gob"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/mining"
)

// Federation surface of the collection server.
//
// GET /v1/replicate?since=V&gen=G streams this server's counter change
// as a gob-encoded mining.CounterDelta — the pull side of multi-site
// replication. The endpoint is privacy-free to expose: it serves exactly
// the perturbed marginal counts the server itself holds (no record ever
// existed server-side in the FRAPP trust model). `since` is the stream
// position the caller's previous pull returned (0 for first contact),
// `gen` the counter generation it was returned under; a generation
// mismatch, an unretained baseline, or since=0 all produce a FULL delta
// the caller applies from scratch, so a chain can never silently skew.
//
// A server with EnableFederation becomes a coordinator: its counter is
// the merged global view published by the federation sync loop, its
// /v1/stats carries the per-peer health table and version vector, its
// /v1/query and /v1/mine responses are stamped with the version vector
// they reflect, and it refuses direct submissions (403) — records enter
// the federation at collector sites only.

// errWindowedServer rejects durability and federation on a windowed
// server: ring expiry is wall-clock-defined, so neither a WAL replay
// nor a delta stream can reproduce the collection's content later or
// elsewhere (deltas cannot express expiry subtractions at all).
var errWindowedServer = fmt.Errorf("%w: collection is a sliding window (in-memory ring); replication and state restore are unavailable", ErrService)

// handleReplicate serves one replication pull.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.windowed {
		httpError(w, http.StatusConflict, errWindowedServer)
		return
	}
	since, err := queryUint64(r, "since", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	gen, err := queryUint64(r, "gen", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// A caller chained onto a different counter object — a different
	// delta epoch — gets a full delta: the object it replicated from is
	// gone, and so are its baselines. The epoch is a per-object random
	// nonce (not the cache generation, which restarts at small values
	// every process and could collide across a crash-reboot), so a stale
	// (since, gen) pair can never be satisfied incrementally against a
	// different state.
	counter := s.ctr()
	if gen != counter.DeltaEpoch() {
		since = 0
	}
	d, err := counter.DeltaSince(since)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := gob.NewEncoder(w).Encode(d); err != nil {
		// Headers are gone; the truncated body fails the client's decode.
		return
	}
}

// ReplaceCounter atomically swaps the counter the query, mining, and
// stats handlers answer from — the publish hook of a federation
// coordinator. vector is the per-peer version vector the counter
// reflects; it is stamped into /v1/query and /v1/mine responses. Like a
// state restore, the swap invalidates the mining-result cache and bumps
// the counter generation BEFORE publishing, so no worker can pair the
// new counter with a stale cache entry (see executeMine). The incoming
// counter's fingerprint — which seals its scheme, schema, and
// parameters — must match this server's contract exactly: a counter
// collected under a different scheme is rejected, never served.
func (s *Server) ReplaceCounter(c mining.LiveCounter, vector map[string]uint64) error {
	if c == nil {
		return fmt.Errorf("%w: nil counter", ErrService)
	}
	if s.store != nil {
		// The store's WAL chains off the counter object it was attached
		// to; swapping the object would silently stop persisting.
		return errStoreBacked
	}
	if s.windowed {
		// Swapping a plain merged counter into a windowed server would
		// silently drop the expiry semantics the collection advertises.
		return errWindowedServer
	}
	if c.Fingerprint() != s.scheme.Fingerprint() {
		return fmt.Errorf("%w: counter does not match this server's scheme, schema, and perturbation contract", ErrService)
	}
	gen := s.jobs.invalidateCache()
	s.counter.Store(&counterRef{counter: c, gen: gen, vector: vector})
	return nil
}

// EnableFederation marks this server as a federation coordinator fed by
// the given sync loop: submissions are refused (the global view is
// rebuilt from peers; locally ingested records would be silently
// discarded on the next publish) and /v1/stats gains the federation
// health block. The caller owns the coordinator's lifecycle — wire its
// publish hook to ReplaceCounter and Close it before the server.
func (s *Server) EnableFederation(coord *federation.Coordinator) error {
	if coord == nil {
		return fmt.Errorf("%w: nil coordinator", ErrService)
	}
	if s.store != nil {
		// A coordinator republishes merged counters through
		// ReplaceCounter, which a store-backed server must refuse.
		return errStoreBacked
	}
	if s.windowed {
		// ReplaceCounter refuses on a windowed server (see above), so a
		// coordinator could never publish its merged view.
		return errWindowedServer
	}
	if !s.fed.CompareAndSwap(nil, coord) {
		return fmt.Errorf("%w: federation already enabled", ErrService)
	}
	return nil
}

// Federated reports whether this server is a federation coordinator.
func (s *Server) Federated() bool { return s.fed.Load() != nil }

// Matrix returns the server's gamma-diagonal perturbation matrix — the
// zero matrix when the server runs a boolean scheme. Federation
// coordinators should be built from CounterScheme instead, which covers
// every scheme.
func (s *Server) Matrix() core.UniformMatrix { return s.matrix }

// PublishedSchema returns the schema the server publishes on /v1/schema.
func (s *Server) PublishedSchema() *dataset.Schema { return s.schema }

// errFederated rejects direct submissions on a coordinator.
var errFederated = fmt.Errorf("%w: federation coordinator does not accept submissions; submit to a collector site", ErrService)

func queryUint64(r *http.Request, key string, def uint64) (uint64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad %s=%q", ErrService, key, raw)
	}
	return v, nil
}
