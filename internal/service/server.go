// Package service provides a miner-side collection server and a
// client-side submission library for FRAPP deployments, realizing the
// paper's trust model over HTTP: each client perturbs its own record
// locally (the server publishes the schema and the privacy parameters)
// and submits only the distorted record; the server accumulates
// submissions and answers mining queries with reconstructed supports.
//
// Wire format: records travel as JSON objects mapping attribute names to
// category names, so submissions are human-readable and schema-checked.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/mining"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// ErrService is returned for invalid service configuration or requests.
var ErrService = errors.New("service: invalid input")

// errNoSubmissions distinguishes "nothing collected yet" (409) from
// malformed requests (400) across the sync and job mining paths.
var errNoSubmissions = fmt.Errorf("%w: no submissions yet", ErrService)

// Server is the miner-side endpoint. It never sees unperturbed data: it
// ingests whatever (already-perturbed) records clients submit into an
// incrementally materialized, lock-striped counter and answers mining
// queries through the published matrix without ever rescanning
// submissions. Concurrent submit handlers land on different counter
// shards, so ingestion scales with cores instead of serializing on one
// mutex.
//
// Mining is asynchronous: requests become jobs executed by a bounded
// worker pool over snapshot-versioned results, so heavy miner traffic is
// throttled to -mine-workers concurrent Apriori runs and repeated mines
// of an unchanged collection are served from cache (see jobs.go). The
// synchronous /v1/mine endpoint is a thin submit-and-await wrapper over
// the same pool.
type Server struct {
	schema *dataset.Schema
	spec   core.PrivacySpec
	gamma  float64
	// scheme is the negotiated perturbation contract this server counts
	// under — gamma (default), mask, or cutpaste. Every layer below
	// (counter, query estimates, mining cache keys, persistence,
	// federation fingerprints) flows from this one value, and it is
	// advertised on /v1/schema and /v1/stats so clients can validate it.
	scheme mining.CounterScheme
	// matrix is the gamma-diagonal matrix; set only when scheme is
	// gamma (the boolean schemes publish their own parameters).
	matrix core.UniformMatrix
	// counter is swapped wholesale on state restore while submit and
	// mining handlers read it concurrently, hence the atomic pointer.
	// The counter travels together with its cache generation so a
	// mining worker always sees a consistent (counter, generation) pair
	// — read separately, a worker could pair the NEW counter with the
	// OLD generation (or vice versa) around a restore and serve or
	// store a cache entry from the wrong counter's version line.
	counter atomic.Pointer[counterRef]
	jobs    *jobStore
	// queryLimit caps the filters of one /v1/query batch (see query.go).
	queryLimit int
	// maxBody caps the request body of every JSON/binary POST endpoint
	// via http.MaxBytesReader; oversized submissions answer 413.
	maxBody int64
	// fed, when set, marks this server as a federation coordinator (see
	// replicate.go): its counter is the merged global view published by
	// the sync loop, and direct submissions are refused. Atomic because
	// EnableFederation may legally race in-flight request handlers.
	fed atomic.Pointer[federation.Coordinator]
	// store, when set, is the durable persistence backend (see store.go):
	// the counter was recovered from it at construction, a background
	// flusher appends deltas to its WAL, and checkpointEvery records
	// trigger compaction. storeMu serializes all store I/O (the flusher
	// loop and explicit FlushWAL/CheckpointNow calls).
	store           store.StateStore
	storeMu         sync.Mutex
	checkpointEvery int
	persistStop     chan struct{}
	persistDone     chan struct{}
	closeOnce       sync.Once
	// windowed marks a sliding-window collection (WithWindow): its
	// counter implements mining.WindowView, serves `window` query/mine
	// parameters, and refuses durability and federation (expiry is
	// wall-clock-defined and cannot be replayed or replicated).
	windowed bool
	// start is when NewServer ran — the anchor for /v1/stats uptime and
	// the uptime gauge.
	start time.Time
	// met, when set (WithTelemetry), holds the operational instruments
	// and the middleware that records them; see telemetry.go.
	met *serverMetrics
}

// counterRef pairs a counter with the cache generation it belongs to
// and — on a federation coordinator — the per-peer version vector the
// counter reflects. The three travel as one atomic unit so a response
// can never stamp a counter with another counter's provenance.
type counterRef struct {
	counter mining.LiveCounter
	gen     uint64
	vector  map[string]uint64
}

// Option configures a Server.
type Option func(*serverConfig)

type serverConfig struct {
	scheme          string
	shards          int
	mineWorkers     int
	jobTTL          time.Duration
	queryLimit      int
	maxBody         int64
	store           store.StateStore
	checkpointEvery int
	walFlush        time.Duration
	metrics         *telemetry.Registry
	accessLog       *telemetry.Logger
	collection      string
	windowBuckets   int
	windowBucket    time.Duration
}

// WithScheme selects the perturbation scheme the server counts under:
// "gamma" (the default and the paper's recommended scheme — the
// gamma-diagonal matrix minimizes the reconstruction condition number
// under the privacy bound), "mask", or "cutpaste". The scheme's
// parameters are derived from the published (schema, γ) contract, so
// clients can re-derive and verify them locally.
func WithScheme(name string) Option {
	return func(c *serverConfig) { c.scheme = name }
}

// WithShards sets the ingestion shard count. Values <= 0 (and the
// default) mean runtime.GOMAXPROCS(0) — one stripe per core.
func WithShards(n int) Option {
	return func(c *serverConfig) { c.shards = n }
}

// WithWindow makes the server's collection a sliding window: records
// expire after buckets × bucket of wall-clock time, maintained as a
// ring of time-bucketed sub-counters (see mining.WindowedCounter), and
// /v1/query and mining jobs accept a `window` duration parameter
// restricting the answer to the newest whole buckets. A windowed
// collection is in-memory only — it cannot combine with WithStore,
// LoadState, or federation, because bucket expiry is wall-clock-defined
// and cannot be replayed or replicated.
func WithWindow(buckets int, bucket time.Duration) Option {
	return func(c *serverConfig) {
		c.windowBuckets = buckets
		c.windowBucket = bucket
	}
}

// defaultMaxBody is the default request-body cap: generous for real
// batches (a 10k-record binary batch over a wide schema is well under
// 1 MiB) while bounding what one request can make the server buffer.
const defaultMaxBody = 8 << 20

// WithMaxBody caps the request body size in bytes for every POST
// endpoint that decodes one (/v1/submit, /v1/submit-batch, /v1/query,
// /v1/mine-jobs). Oversized requests answer 413. Values <= 0 (and the
// default) mean 8 MiB.
func WithMaxBody(n int64) Option {
	return func(c *serverConfig) { c.maxBody = n }
}

// WithMineWorkers bounds the number of concurrently executing mining
// jobs. Values <= 0 (and the default) mean 2: mining is the most
// expensive operation in the system, and the worker pool is what keeps
// a burst of miners from starving ingestion of cores.
func WithMineWorkers(n int) Option {
	return func(c *serverConfig) { c.mineWorkers = n }
}

// WithJobTTL sets how long finished mining jobs remain pollable before
// eviction. Values <= 0 (and the default) mean 15 minutes.
func WithJobTTL(d time.Duration) Option {
	return func(c *serverConfig) { c.jobTTL = d }
}

// NewServer configures a server for one schema and privacy contract and
// starts its mining worker pool. Call Close when done with the server.
func NewServer(schema *dataset.Schema, spec core.PrivacySpec, opts ...Option) (*Server, error) {
	if schema == nil {
		return nil, fmt.Errorf("%w: nil schema", ErrService)
	}
	var cfg serverConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	gamma, err := spec.Gamma()
	if err != nil {
		return nil, err
	}
	scheme, err := mining.SchemeForContract(cfg.scheme, schema, gamma)
	if err != nil {
		return nil, err
	}
	var met *serverMetrics
	if cfg.metrics != nil {
		met = newServerMetrics(cfg.metrics, cfg.accessLog, cfg.collection)
	}
	windowed := cfg.windowBuckets != 0 || cfg.windowBucket != 0
	if windowed && cfg.store != nil {
		return nil, fmt.Errorf("%w: a windowed collection cannot be store-backed (bucket expiry is wall-clock-defined and cannot be replayed)", ErrService)
	}
	// A store-backed server starts from its durable state — newest
	// checkpoint plus replayed WAL tail — instead of empty, and the
	// recovered counter carries its pre-crash replication identity so
	// federation pullers resume incrementally. A windowed server instead
	// builds the in-memory bucket ring.
	var counter mining.LiveCounter
	if windowed {
		counter, err = mining.NewWindowedCounter(scheme, cfg.shards, cfg.windowBuckets, cfg.windowBucket)
		if err != nil {
			return nil, err
		}
	} else if cfg.store != nil {
		// The observer must be installed before Recover so the recovery
		// outcome itself is observed. The store interface stays
		// observer-free; any store that can report is duck-typed here.
		if met != nil {
			if o, ok := cfg.store.(interface{ SetObserver(store.Observer) }); ok {
				o.SetObserver(&met.storeObs)
			}
		}
		recovered, err := cfg.store.Recover(scheme, cfg.shards)
		if err != nil {
			return nil, fmt.Errorf("recovering durable state: %w", err)
		}
		if recovered != nil {
			counter = recovered
		}
	}
	if counter == nil {
		counter, err = mining.NewShardedCounter(scheme, cfg.shards)
		if err != nil {
			return nil, err
		}
	}
	if cfg.store != nil {
		if err := cfg.store.Attach(counter.(*mining.ShardedCounter)); err != nil {
			return nil, fmt.Errorf("attaching durable store: %w", err)
		}
	}
	if cfg.queryLimit <= 0 {
		cfg.queryLimit = defaultQueryLimit
	}
	if cfg.maxBody <= 0 {
		cfg.maxBody = defaultMaxBody
	}
	s := &Server{schema: schema, spec: spec, gamma: gamma, scheme: scheme, queryLimit: cfg.queryLimit, maxBody: cfg.maxBody, windowed: windowed, start: time.Now(), met: met}
	if g, ok := scheme.(*mining.GammaScheme); ok {
		s.matrix = g.Matrix()
	}
	met.observeCounter(counter)
	s.counter.Store(&counterRef{counter: counter})
	s.jobs = newJobStore(cfg.mineWorkers, cfg.jobTTL, s.executeMine)
	if met != nil {
		s.jobs.setMetrics(&met.jobs)
		met.wireServer(s)
	}
	if cfg.store != nil {
		s.store = cfg.store
		s.checkpointEvery = cfg.checkpointEvery
		if s.checkpointEvery <= 0 {
			s.checkpointEvery = defaultCheckpointEvery
		}
		if cfg.walFlush <= 0 {
			cfg.walFlush = defaultWALFlushInterval
		}
		s.persistStop = make(chan struct{})
		s.persistDone = make(chan struct{})
		go s.persistLoop(cfg.walFlush)
	}
	return s, nil
}

// Close stops the mining worker pool, failing any still-queued jobs. On
// a store-backed server it also stops the flusher, appends the pending
// WAL tail (best-effort — call FlushWAL or CheckpointNow first for
// error visibility), and closes the store. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.store != nil {
			close(s.persistStop)
			<-s.persistDone
			s.storeMu.Lock()
			_ = s.store.Append()
			_ = s.store.Close()
			s.storeMu.Unlock()
		}
		s.jobs.close()
	})
}

// ctr returns the live counter.
func (s *Server) ctr() mining.LiveCounter { return s.counter.Load().counter }

// Scheme returns the name of the server's perturbation scheme.
func (s *Server) Scheme() string { return s.scheme.Name() }

// CounterScheme returns the server's full scheme contract — what a
// federation coordinator over this server's sites must be built with so
// its compatibility fingerprint can never drift from the server's own.
func (s *Server) CounterScheme() mining.CounterScheme { return s.scheme }

// Windowed reports whether this server's collection is a sliding
// window (WithWindow).
func (s *Server) Windowed() bool { return s.windowed }

// WindowSpec returns the sliding-window ring geometry — (0, 0) on an
// unwindowed server.
func (s *Server) WindowSpec() (buckets int, bucket time.Duration) {
	if wv, ok := s.ctr().(mining.WindowView); ok {
		return wv.WindowSpec()
	}
	return 0, 0
}

// N returns the number of submissions received so far.
func (s *Server) N() int { return s.ctr().N() }

// Shards returns the ingestion shard count.
func (s *Server) Shards() int { return s.ctr().Shards() }

// SnapshotVersion returns the counter's current snapshot version.
func (s *Server) SnapshotVersion() uint64 { return s.ctr().Version() }

// CounterGeneration returns the live counter's generation: 0 at start,
// bumped by every state restore. A restore replaces the counter object
// and RESTARTS its version line (at the restored record count), so two
// equal snapshot versions only imply equal counter content within one
// generation — which is why the generation travels in /v1/stats and
// /v1/query responses alongside the version.
func (s *Server) CounterGeneration() uint64 { return s.counter.Load().gen }

// MineWorkers returns the size of the mining worker pool.
func (s *Server) MineWorkers() int { return s.jobs.workers }

// AprioriRuns returns how many times a mining job actually executed
// Apriori (i.e. cache misses) — the observable the cache-correctness
// tests assert on.
func (s *Server) AprioriRuns() int64 { return s.jobs.runs.Load() }

// Handler returns the HTTP API. With telemetry enabled every route is
// wrapped in the RED-metrics/access-log middleware at construction, so
// the route label is always the registered pattern — never the raw URL.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		if s.met != nil {
			h = s.met.wrap(pattern, h)
		}
		mux.HandleFunc(pattern, h)
	}
	handle("GET /v1/schema", s.handleSchema)
	handle("POST /v1/submit", s.handleSubmit)
	handle("POST /v1/submit-batch", s.handleSubmitBatch)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /v1/mine", s.handleMine)
	handle("POST /v1/query", s.handleQuery)
	handle("POST /v1/mine-jobs", s.handleSubmitJob)
	handle("GET /v1/mine-jobs", s.handleListJobs)
	handle("GET /v1/mine-jobs/{id}", s.handleGetJob)
	handle("GET /v1/replicate", s.handleReplicate)
	return mux
}

// SchemaResponse is the published contract clients need to perturb
// locally: the full schema, the privacy parameters, and the active
// perturbation scheme with its derived parameters. Clients re-derive
// the scheme from (schema, γ) and verify the advertised parameters
// satisfy the privacy contract before submitting anything.
type SchemaResponse struct {
	Name       string          `json:"name"`
	Attributes []AttributeJSON `json:"attributes"`
	Privacy    PrivacyJSON     `json:"privacy"`
	Scheme     SchemeJSON      `json:"scheme"`
}

// SchemeJSON advertises the active perturbation scheme. An absent or
// empty name (responses from pre-scheme servers) means gamma.
type SchemeJSON struct {
	Name string `json:"name"`
	// MaskP is MASK's bit-retention probability (scheme "mask" only).
	MaskP float64 `json:"mask_p,omitempty"`
	// CutK and CutRho are the cut-and-paste operator parameters (scheme
	// "cutpaste" only).
	CutK   int     `json:"cut_k,omitempty"`
	CutRho float64 `json:"cut_rho,omitempty"`
}

// AttributeJSON is one attribute of the published schema.
type AttributeJSON struct {
	Name       string   `json:"name"`
	Categories []string `json:"categories"`
}

// PrivacyJSON carries the privacy contract.
type PrivacyJSON struct {
	Rho1  float64 `json:"rho1"`
	Rho2  float64 `json:"rho2"`
	Gamma float64 `json:"gamma"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	resp := SchemaResponse{
		Name:    s.schema.Name,
		Privacy: PrivacyJSON{Rho1: s.spec.Rho1, Rho2: s.spec.Rho2, Gamma: s.gamma},
		Scheme:  s.schemeJSON(),
	}
	for _, a := range s.schema.Attrs {
		resp.Attributes = append(resp.Attributes, AttributeJSON{Name: a.Name, Categories: a.Categories})
	}
	writeJSON(w, http.StatusOK, resp)
}

// schemeJSON renders the active scheme contract for the wire.
func (s *Server) schemeJSON() SchemeJSON {
	out := SchemeJSON{Name: s.scheme.Name()}
	switch sc := s.scheme.(type) {
	case *mining.MaskCounterScheme:
		out.MaskP = sc.Mask().P
	case *mining.CutPasteCounterScheme:
		out.CutK = sc.CutPaste().K
		out.CutRho = sc.CutPaste().Rho
	}
	return out
}

// RecordJSON is the wire form of one gamma-perturbed record: attribute
// name → category. The gamma scheme perturbs within the categorical
// domain, so every submission is a complete record.
type RecordJSON map[string]string

// BoolRecordJSON is the wire form of one boolean-perturbed record (MASK
// and cut-and-paste): attribute name → list of asserted categories. A
// perturbed boolean record may assert zero, one, or several categories
// per attribute, and attributes may be absent entirely.
type BoolRecordJSON map[string][]string

// decodeRecord validates and converts a wire record.
func (s *Server) decodeRecord(rj RecordJSON) (dataset.Record, error) {
	if len(rj) != s.schema.M() {
		return nil, fmt.Errorf("%w: record has %d attributes, schema has %d", ErrService, len(rj), s.schema.M())
	}
	rec := make(dataset.Record, s.schema.M())
	for j, a := range s.schema.Attrs {
		cat, ok := rj[a.Name]
		if !ok {
			return nil, fmt.Errorf("%w: missing attribute %q", ErrService, a.Name)
		}
		v := a.CategoryIndex(cat)
		if v < 0 {
			return nil, fmt.Errorf("%w: unknown category %q for attribute %q", ErrService, cat, a.Name)
		}
		rec[j] = v
	}
	return rec, nil
}

// decodeSubmission converts one wire submission into an ingest closure
// per the active scheme: gamma submissions are complete records
// (RecordJSON) fed through the counter's record path — one validation
// in decodeRecord, one in Add, no intermediate item list — and boolean
// submissions are item sets (BoolRecordJSON) fed through Ingest.
func (s *Server) decodeSubmission(raw json.RawMessage) (func(mining.LiveCounter) error, error) {
	if s.scheme.Name() == mining.SchemeGamma {
		var rj RecordJSON
		if err := json.Unmarshal(raw, &rj); err != nil {
			return nil, fmt.Errorf("%w: bad JSON: %v", ErrService, err)
		}
		rec, err := s.decodeRecord(rj)
		if err != nil {
			return nil, err
		}
		return func(c mining.LiveCounter) error { return c.Add(rec) }, nil
	}
	items, err := s.decodeBoolSubmission(raw)
	if err != nil {
		return nil, err
	}
	return func(c mining.LiveCounter) error { return c.Ingest(items) }, nil
}

// walkAttrObject parses a JSON object keyed by attribute names token by
// token — encoding/json would silently keep only the last of two
// duplicate keys, and both decoders built on this (query filters and
// boolean submissions) must reject that collapse, not rewrite the
// request. visit is called once per entry with the resolved attribute
// index and the decoder positioned at the entry's value.
func (s *Server) walkAttrObject(raw json.RawMessage, kind string, visit func(attr int, name string, dec *json.Decoder) error) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("%w: bad %s JSON: %v", ErrService, kind, err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("%w: %s must be an object keyed by attribute names", ErrService, kind)
	}
	seen := make(map[int]bool)
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: bad %s JSON: %v", ErrService, kind, err)
		}
		name := keyTok.(string) // object keys are always strings
		j := s.attrIndex(name)
		if j < 0 {
			return fmt.Errorf("%w: unknown attribute %q", ErrService, name)
		}
		if seen[j] {
			return fmt.Errorf("%w: duplicate attribute %q in %s", ErrService, name, kind)
		}
		seen[j] = true
		if err := visit(j, name, dec); err != nil {
			return err
		}
	}
	if _, err := dec.Token(); err != nil { // consume the closing '}'
		return fmt.Errorf("%w: bad %s JSON: %v", ErrService, kind, err)
	}
	return nil
}

// decodeBoolSubmission parses one boolean-scheme wire record through
// the duplicate-rejecting attribute walk: on the WRITE path a silently
// dropped category list corrupts the counts permanently, so a
// duplicate attribute is a 400, never a truncated ingest.
func (s *Server) decodeBoolSubmission(raw json.RawMessage) ([]mining.Item, error) {
	var items []mining.Item
	err := s.walkAttrObject(raw, "submission", func(j int, name string, dec *json.Decoder) error {
		var cats []string
		if err := dec.Decode(&cats); err != nil {
			return fmt.Errorf("%w: attribute %q must carry a category list: %v", ErrService, name, err)
		}
		seenVal := make(map[int]bool, len(cats))
		for _, cat := range cats {
			v := s.schema.Attrs[j].CategoryIndex(cat)
			if v < 0 {
				return fmt.Errorf("%w: unknown category %q for attribute %q", ErrService, cat, name)
			}
			if seenVal[v] {
				return fmt.Errorf("%w: duplicate category %q for attribute %q", ErrService, cat, name)
			}
			seenVal[v] = true
			items = append(items, mining.Item{Attr: j, Value: v})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return items, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Federated() {
		httpError(w, http.StatusForbidden, errFederated)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var raw json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		httpBodyError(w, err, "bad JSON")
		return
	}
	ingest, err := s.decodeSubmission(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := ingest(s.ctr()); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"records": s.N()})
}

// handleSubmitBatch ingests a batch of perturbed records atomically —
// all records or none, whichever wire form. Both paths decode the
// whole batch into item lists and hand them to the counter's
// IngestBatch, which validates every record before touching any shard:
// the atomicity guarantee is the counter's, not handler bookkeeping,
// so a record the decoder accepts but the counter rejects can no
// longer leave earlier records of the batch applied.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	if s.Federated() {
		httpError(w, http.StatusForbidden, errFederated)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if mediaType(r.Header.Get("Content-Type")) == BatchContentTypeBinary {
		s.handleSubmitBatchBinary(w, r)
		return
	}
	var batch []json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		httpBodyError(w, err, "bad JSON")
		return
	}
	records := make([][]mining.Item, len(batch))
	for i, raw := range batch {
		items, err := s.decodeSubmissionItems(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("record %d: %w", i, err))
			return
		}
		records[i] = items
	}
	if err := s.ctr().IngestBatch(records); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"records": s.N()})
}

// handleSubmitBatchBinary is the binary fast path: fingerprint check,
// pooled zero-copy decode, one IngestBatch. The fingerprint header is
// mandatory here (unlike JSON, whose category names are self-checking
// against the schema): binary records are bare indexes, and indexes
// perturbed under a different contract would count silently wrong.
func (s *Server) handleSubmitBatchBinary(w http.ResponseWriter, r *http.Request) {
	fp := r.Header.Get(FingerprintHeader)
	if fp == "" {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("%w: binary batch without %s header", ErrService, FingerprintHeader))
		return
	}
	if want := s.scheme.Fingerprint(); fp != want {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("%w: scheme fingerprint %q does not match the server contract %q", ErrService, fp, want))
		return
	}
	scratch := batchPool.Get().(*batchScratch)
	defer scratch.release()
	records, err := scratch.decode(r.Body)
	if err != nil {
		httpBodyError(w, err, "bad binary batch")
		return
	}
	if err := s.ctr().IngestBatch(records); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"records": s.N()})
}

// decodeSubmissionItems converts one JSON wire submission into the
// item list IngestBatch consumes: gamma submissions (complete records)
// become one item per attribute, boolean submissions decode through
// the duplicate-rejecting attribute walk.
func (s *Server) decodeSubmissionItems(raw json.RawMessage) ([]mining.Item, error) {
	if s.scheme.Name() == mining.SchemeGamma {
		var rj RecordJSON
		if err := json.Unmarshal(raw, &rj); err != nil {
			return nil, fmt.Errorf("%w: bad JSON: %v", ErrService, err)
		}
		rec, err := s.decodeRecord(rj)
		if err != nil {
			return nil, err
		}
		items := make([]mining.Item, len(rec))
		for j, v := range rec {
			items[j] = mining.Item{Attr: j, Value: v}
		}
		return items, nil
	}
	return s.decodeBoolSubmission(raw)
}

// StatsResponse summarizes the collection state.
type StatsResponse struct {
	Records int     `json:"records"`
	Gamma   float64 `json:"gamma"`
	// Scheme is the active perturbation scheme (empty responses from
	// pre-scheme servers mean gamma); ConditionNumber is that scheme's
	// full-record reconstruction condition number — the paper's accuracy
	// figure of merit, directly comparable across schemes.
	Scheme          string  `json:"scheme"`
	ConditionNumber float64 `json:"condition_number"`
	DomainSize      int     `json:"domain_size"`
	Shards          int     `json:"shards"`
	// SnapshotVersion is the counter's current content version — mining
	// and query results stamped with the same version AND the same
	// counter generation are exact for this state.
	SnapshotVersion uint64 `json:"snapshot_version"`
	// CounterGeneration counts state restores; a restore restarts the
	// version line, so version comparisons are only meaningful within
	// one generation.
	CounterGeneration uint64 `json:"counter_generation"`
	// MineWorkers and MineRuns describe the mining pool: pool size and
	// the number of Apriori executions so far (cache hits excluded).
	MineWorkers int   `json:"mine_workers"`
	MineRuns    int64 `json:"mine_runs"`
	// UptimeSeconds is how long this server instance has been up;
	// StartTime is when it was constructed (RFC 3339). Together they let
	// a poller distinguish a restart (start time moved) from a counter
	// reset.
	UptimeSeconds float64   `json:"uptime_seconds"`
	StartTime     time.Time `json:"start_time"`
	// Federation, present only on a federation coordinator, carries the
	// per-peer health table and the version vector of the published
	// global counter (see replicate.go).
	Federation *federation.Stats `json:"federation,omitempty"`
}

// conditionNumber reports the active scheme's full-record (length-M)
// reconstruction condition number, the quantity the paper compares
// schemes by: the gamma-diagonal matrix's closed-form condition number,
// MASK's (2p−1)^(−M), or the 1-norm condition of C&P's order-(M+1)
// partial-support matrix.
func (s *Server) conditionNumber() float64 {
	switch sc := s.scheme.(type) {
	case *mining.MaskCounterScheme:
		return sc.Mask().Cond(s.schema.M())
	case *mining.CutPasteCounterScheme:
		c, err := sc.CutPaste().Cond(s.schema.M())
		if err != nil {
			return math.Inf(1)
		}
		return c
	default:
		return s.matrix.Cond()
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One load yields a consistent (counter, generation) pair even if a
	// state restore lands mid-request. The version is read BEFORE the
	// record count (Add bumps the count before the version), so the
	// records >= snapshot_version relation of the query path holds here
	// too under concurrent ingestion.
	ref := s.counter.Load()
	version := ref.counter.Version()
	resp := StatsResponse{
		Records:           ref.counter.N(),
		Gamma:             s.gamma,
		Scheme:            s.scheme.Name(),
		ConditionNumber:   s.conditionNumber(),
		DomainSize:        s.schema.DomainSize(),
		Shards:            ref.counter.Shards(),
		SnapshotVersion:   version,
		CounterGeneration: ref.gen,
		MineWorkers:       s.MineWorkers(),
		MineRuns:          s.AprioriRuns(),
		UptimeSeconds:     time.Since(s.start).Seconds(),
		StartTime:         s.start.UTC(),
	}
	if fed := s.fed.Load(); fed != nil {
		resp.Federation = fed.Stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// MineResponse is the reconstructed mining model.
type MineResponse struct {
	Records    int     `json:"records"`
	MinSupport float64 `json:"min_support"`
	// SnapshotVersion is the counter version this model is exact for;
	// Cached reports that the frequent itemsets came from the
	// version-keyed result cache rather than a fresh Apriori run.
	SnapshotVersion uint64 `json:"snapshot_version"`
	Cached          bool   `json:"cached,omitempty"`
	// Window echoes the request's window restriction on a windowed
	// collection: the model was mined from only the records of the last
	// Window, rounded up to whole ring buckets. Absent on full mines.
	Window string `json:"window,omitempty"`
	// VersionVector, present only on a federation coordinator, maps peer
	// URL → replication position: exactly which per-site states the
	// merged counter this model was mined from reflects.
	VersionVector map[string]uint64 `json:"version_vector,omitempty"`
	Counts        []int             `json:"counts_by_length"`
	Itemsets      []ItemsetJSON     `json:"itemsets"`
	Rules         []RuleJSON        `json:"rules,omitempty"`
}

// ItemsetJSON is one frequent itemset on the wire.
type ItemsetJSON struct {
	Items   map[string]string `json:"items"`
	Support float64           `json:"support"`
}

// RuleJSON is one association rule on the wire.
type RuleJSON struct {
	Antecedent map[string]string `json:"antecedent"`
	Consequent map[string]string `json:"consequent"`
	Support    float64           `json:"support"`
	Confidence float64           `json:"confidence"`
}

// mineParamsFromQuery parses the synchronous endpoint's query string.
func mineParamsFromQuery(r *http.Request) (MineParams, error) {
	var p MineParams
	var err error
	if p.MinSupport, err = queryFloat(r, "minsup", defaultMinSupport); err != nil {
		return p, err
	}
	if p.MinConf, err = queryFloat(r, "minconf", 0); err != nil {
		return p, err
	}
	if p.Limit, err = queryInt(r, "limit", defaultMineLimit); err != nil {
		return p, err
	}
	if p.MaxLen, err = queryInt(r, "maxlen", 0); err != nil {
		return p, err
	}
	p.Window = r.URL.Query().Get("window")
	// Defaults were applied for ABSENT parameters only (above), so an
	// explicit minsup=0 is rejected and an explicit limit=0 still means
	// "no itemsets in the response" — the endpoint's pre-job semantics.
	return p, p.validate()
}

// handleMine is the synchronous mining endpoint, kept as a thin wrapper
// that submits a job and awaits it: synchronous miners share the bounded
// worker pool (and the result cache) with asynchronous ones, so a burst
// of /v1/mine traffic can no longer monopolize the machine.
func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	p, err := mineParamsFromQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if s.N() == 0 {
		httpError(w, http.StatusConflict, errNoSubmissions)
		return
	}
	j, err := s.jobs.submit(p)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err := j.await(r.Context()); err != nil {
		// Client went away; the job still completes and stays pollable.
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("%w: canceled while awaiting job %s", ErrService, j.id))
		return
	}
	resp := s.jobs.snapshot(j, true)
	switch resp.State {
	case JobDone:
		writeJSON(w, http.StatusOK, resp.Result)
	default:
		status := http.StatusBadRequest
		switch {
		case errors.Is(j.err, errNoSubmissions):
			status = http.StatusConflict
		case errors.Is(j.err, errServerClosed):
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, j.err)
	}
}

// handleSubmitJob enqueues an asynchronous mining job. The body is an
// optional JSON MineParams object; an empty body means defaults.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var p MineParams
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&p); err != nil && !errors.Is(err, io.EOF) {
		httpBodyError(w, err, "bad JSON")
		return
	}
	// In the JSON API an absent field decodes to zero, so zero values
	// mean defaults here (documented in docs/http-api.md).
	p.applyDefaults()
	if err := p.validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.jobs.submit(p)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobs.snapshot(j, false))
}

// handleGetJob reports one job, including its result when done. Unknown
// and TTL-evicted ids both return 404 — an evicted job is
// indistinguishable from one that never existed.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("%w: unknown job %q", ErrService, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.snapshot(j, true))
}

// handleListJobs reports all retained jobs in submission order, without
// result payloads (poll the individual job for those).
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	out := make([]JobResponse, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, s.jobs.snapshot(j, false))
	}
	writeJSON(w, http.StatusOK, out)
}

// executeMine runs one mining request on a worker: serve from the
// snapshot-versioned cache when the counter hasn't changed since an
// identical computation, otherwise snapshot, run Apriori, and cache the
// result under the snapshot's version. Returns the rendered response,
// the version it is exact for, and whether it was a cache hit.
func (s *Server) executeMine(p MineParams) (*MineResponse, uint64, bool, error) {
	// One atomic load yields a consistent (counter, generation) pair;
	// LoadState clears the cache and bumps the generation BEFORE
	// publishing the new pair, so a worker still holding the old pair
	// can only touch old-generation cache keys — its results linearize
	// before the restore and can never poison the new counter's version
	// line (which restarts at the restored count and would otherwise
	// collide with the old counter's cached versions).
	ref := s.counter.Load()
	counter, gen := ref.counter, ref.gen
	// A window restriction is only meaningful on a windowed collection.
	// The parsed duration (not the request spelling) keys the cache, so
	// "60m" and "1h" share one entry; a windowed counter bumps its
	// version on every ring rotation, so equal (generation, version)
	// implies the same bucket union for every window and the cache
	// discipline below carries over unchanged.
	window, err := p.windowDuration()
	if err != nil {
		return nil, 0, false, err
	}
	var wv mining.WindowView
	if window > 0 {
		var ok bool
		if wv, ok = counter.(mining.WindowView); !ok {
			return nil, 0, false, fmt.Errorf("%w: collection is not windowed; mine without the window parameter", ErrService)
		}
	}
	key := mineKey{gen: gen, version: counter.Version(), minsup: p.MinSupport, scheme: s.scheme.Name(), maxlen: p.MaxLen, window: window}
	if e := s.jobs.cacheGet(key); e != nil {
		if s.met != nil {
			s.met.jobs.cacheHits.Inc()
		}
		resp, err := s.renderMine(e.result, e.records, p)
		if err != nil {
			return nil, key.version, false, err
		}
		resp.SnapshotVersion = key.version
		resp.Cached = true
		resp.VersionVector = ref.vector
		return resp, key.version, true, nil
	}
	// Mine a frozen snapshot so every Apriori pass sees one consistent
	// record count even while submissions keep arriving. A windowed mine
	// folds only the requested bucket suffix of the ring.
	var (
		snapshot mining.SupportCounter
		version  uint64
	)
	if window > 0 {
		snapshot, version = wv.SnapshotWindowVersioned(window)
	} else {
		snapshot, version = counter.SnapshotVersioned()
	}
	n := snapshot.N()
	if n == 0 {
		if window > 0 {
			return nil, version, false, fmt.Errorf("%w (no records in the last %s)", errNoSubmissions, p.Window)
		}
		return nil, version, false, errNoSubmissions
	}
	res, err := mining.AprioriWithOptions(snapshot, p.MinSupport, mining.Options{CandidateRelaxation: 1, MaxLen: p.MaxLen})
	if err != nil {
		return nil, version, false, err
	}
	s.jobs.runs.Add(1)
	if s.met != nil {
		s.met.jobs.cacheMiss.Inc()
	}
	// Adopt the canonical entry: if another worker raced us to the same
	// key (both snapshots valid for this version, possibly with a few
	// more folded-in records each), the first store wins and every job
	// reporting this (generation, version, params) returns its result.
	entry := s.jobs.cachePut(mineKey{gen: gen, version: version, minsup: p.MinSupport, scheme: s.scheme.Name(), maxlen: p.MaxLen, window: window},
		&cacheEntry{records: n, result: res})
	resp, err := s.renderMine(entry.result, entry.records, p)
	if err != nil {
		return nil, version, false, err
	}
	resp.SnapshotVersion = version
	resp.VersionVector = ref.vector
	return resp, version, false, nil
}

// renderMine converts a (possibly cached, therefore read-only) mining
// result into the wire response: itemset truncation and rule generation
// are per-request post-processing, so one cached Apriori run serves any
// combination of minconf and limit.
func (s *Server) renderMine(res *mining.Result, records int, p MineParams) (*MineResponse, error) {
	resp := &MineResponse{
		Records:    records,
		MinSupport: p.MinSupport,
		Window:     p.Window,
		Counts:     res.Counts(),
	}
	emitted := 0
	for _, level := range res.ByLength {
		for _, fi := range level {
			if emitted >= p.Limit {
				break
			}
			resp.Itemsets = append(resp.Itemsets, ItemsetJSON{
				Items:   s.itemsToJSON(fi.Items),
				Support: fi.Support,
			})
			emitted++
		}
	}
	if p.MinConf > 0 {
		rules, err := mining.GenerateRules(res, p.MinConf)
		if err != nil {
			return nil, err
		}
		for i, rule := range rules {
			if i >= p.Limit {
				break
			}
			resp.Rules = append(resp.Rules, RuleJSON{
				Antecedent: s.itemsToJSON(rule.Antecedent),
				Consequent: s.itemsToJSON(rule.Consequent),
				Support:    rule.Support,
				Confidence: rule.Confidence,
			})
		}
	}
	return resp, nil
}

func (s *Server) itemsToJSON(set mining.Itemset) map[string]string {
	out := make(map[string]string, len(set))
	for _, it := range set {
		a := s.schema.Attrs[it.Attr]
		out[a.Name] = a.Categories[it.Value]
	}
	return out
}

func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad %s=%q", ErrService, key, raw)
	}
	return v, nil
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%w: bad %s=%q", ErrService, key, raw)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
