// Package service provides a miner-side collection server and a
// client-side submission library for FRAPP deployments, realizing the
// paper's trust model over HTTP: each client perturbs its own record
// locally (the server publishes the schema and the privacy parameters)
// and submits only the distorted record; the server accumulates
// submissions and answers mining queries with reconstructed supports.
//
// Wire format: records travel as JSON objects mapping attribute names to
// category names, so submissions are human-readable and schema-checked.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
)

// ErrService is returned for invalid service configuration or requests.
var ErrService = errors.New("service: invalid input")

// Server is the miner-side endpoint. It never sees unperturbed data: it
// ingests whatever (already-perturbed) records clients submit into an
// incrementally materialized, lock-striped counter and answers mining
// queries through the published matrix without ever rescanning
// submissions. Concurrent submit handlers land on different counter
// shards, so ingestion scales with cores instead of serializing on one
// mutex.
type Server struct {
	schema  *dataset.Schema
	spec    core.PrivacySpec
	gamma   float64
	matrix  core.UniformMatrix
	counter *mining.ShardedGammaCounter
}

// Option configures a Server.
type Option func(*serverConfig)

type serverConfig struct {
	shards int
}

// WithShards sets the ingestion shard count. Values <= 0 (and the
// default) mean runtime.GOMAXPROCS(0) — one stripe per core.
func WithShards(n int) Option {
	return func(c *serverConfig) { c.shards = n }
}

// NewServer configures a server for one schema and privacy contract.
func NewServer(schema *dataset.Schema, spec core.PrivacySpec, opts ...Option) (*Server, error) {
	if schema == nil {
		return nil, fmt.Errorf("%w: nil schema", ErrService)
	}
	var cfg serverConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	gamma, err := spec.Gamma()
	if err != nil {
		return nil, err
	}
	matrix, err := core.NewGammaDiagonal(schema.DomainSize(), gamma)
	if err != nil {
		return nil, err
	}
	counter, err := mining.NewShardedGammaCounter(schema, matrix, cfg.shards)
	if err != nil {
		return nil, err
	}
	return &Server{schema: schema, spec: spec, gamma: gamma, matrix: matrix, counter: counter}, nil
}

// N returns the number of submissions received so far.
func (s *Server) N() int { return s.counter.N() }

// Shards returns the ingestion shard count.
func (s *Server) Shards() int { return s.counter.Shards() }

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/schema", s.handleSchema)
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("POST /v1/submit-batch", s.handleSubmitBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/mine", s.handleMine)
	return mux
}

// SchemaResponse is the published contract clients need to perturb
// locally: the full schema plus the privacy parameters that determine
// the perturbation matrix.
type SchemaResponse struct {
	Name       string          `json:"name"`
	Attributes []AttributeJSON `json:"attributes"`
	Privacy    PrivacyJSON     `json:"privacy"`
}

// AttributeJSON is one attribute of the published schema.
type AttributeJSON struct {
	Name       string   `json:"name"`
	Categories []string `json:"categories"`
}

// PrivacyJSON carries the privacy contract.
type PrivacyJSON struct {
	Rho1  float64 `json:"rho1"`
	Rho2  float64 `json:"rho2"`
	Gamma float64 `json:"gamma"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	resp := SchemaResponse{
		Name:    s.schema.Name,
		Privacy: PrivacyJSON{Rho1: s.spec.Rho1, Rho2: s.spec.Rho2, Gamma: s.gamma},
	}
	for _, a := range s.schema.Attrs {
		resp.Attributes = append(resp.Attributes, AttributeJSON{Name: a.Name, Categories: a.Categories})
	}
	writeJSON(w, http.StatusOK, resp)
}

// RecordJSON is the wire form of one record: attribute name → category.
type RecordJSON map[string]string

// decodeRecord validates and converts a wire record.
func (s *Server) decodeRecord(rj RecordJSON) (dataset.Record, error) {
	if len(rj) != s.schema.M() {
		return nil, fmt.Errorf("%w: record has %d attributes, schema has %d", ErrService, len(rj), s.schema.M())
	}
	rec := make(dataset.Record, s.schema.M())
	for j, a := range s.schema.Attrs {
		cat, ok := rj[a.Name]
		if !ok {
			return nil, fmt.Errorf("%w: missing attribute %q", ErrService, a.Name)
		}
		v := a.CategoryIndex(cat)
		if v < 0 {
			return nil, fmt.Errorf("%w: unknown category %q for attribute %q", ErrService, cat, a.Name)
		}
		rec[j] = v
	}
	return rec, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var rj RecordJSON
	if err := json.NewDecoder(r.Body).Decode(&rj); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("%w: bad JSON: %v", ErrService, err))
		return
	}
	rec, err := s.decodeRecord(rj)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.counter.Add(rec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"records": s.counter.N()})
}

func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var batch []RecordJSON
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("%w: bad JSON: %v", ErrService, err))
		return
	}
	recs := make([]dataset.Record, 0, len(batch))
	for i, rj := range batch {
		rec, err := s.decodeRecord(rj)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("record %d: %w", i, err))
			return
		}
		recs = append(recs, rec)
	}
	for _, rec := range recs {
		if err := s.counter.Add(rec); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"records": s.counter.N()})
}

// StatsResponse summarizes the collection state.
type StatsResponse struct {
	Records         int     `json:"records"`
	Gamma           float64 `json:"gamma"`
	ConditionNumber float64 `json:"condition_number"`
	DomainSize      int     `json:"domain_size"`
	Shards          int     `json:"shards"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Records:         s.N(),
		Gamma:           s.gamma,
		ConditionNumber: s.matrix.Cond(),
		DomainSize:      s.schema.DomainSize(),
		Shards:          s.Shards(),
	})
}

// MineResponse is the reconstructed mining model.
type MineResponse struct {
	Records    int           `json:"records"`
	MinSupport float64       `json:"min_support"`
	Counts     []int         `json:"counts_by_length"`
	Itemsets   []ItemsetJSON `json:"itemsets"`
	Rules      []RuleJSON    `json:"rules,omitempty"`
}

// ItemsetJSON is one frequent itemset on the wire.
type ItemsetJSON struct {
	Items   map[string]string `json:"items"`
	Support float64           `json:"support"`
}

// RuleJSON is one association rule on the wire.
type RuleJSON struct {
	Antecedent map[string]string `json:"antecedent"`
	Consequent map[string]string `json:"consequent"`
	Support    float64           `json:"support"`
	Confidence float64           `json:"confidence"`
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	minsup, err := queryFloat(r, "minsup", 0.02)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	minconf, err := queryFloat(r, "minconf", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	limit, err := queryInt(r, "limit", 100)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	// Mine a frozen snapshot so every Apriori pass sees one consistent
	// record count even while submissions keep arriving.
	snapshot := s.counter.Snapshot()
	n := snapshot.N()
	if n == 0 {
		httpError(w, http.StatusConflict, fmt.Errorf("%w: no submissions yet", ErrService))
		return
	}
	res, err := mining.Apriori(snapshot, minsup)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp := MineResponse{
		Records:    n,
		MinSupport: minsup,
		Counts:     res.Counts(),
	}
	emitted := 0
	for _, level := range res.ByLength {
		for _, fi := range level {
			if emitted >= limit {
				break
			}
			resp.Itemsets = append(resp.Itemsets, ItemsetJSON{
				Items:   s.itemsToJSON(fi.Items),
				Support: fi.Support,
			})
			emitted++
		}
	}
	if minconf > 0 {
		rules, err := mining.GenerateRules(res, minconf)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		for i, rule := range rules {
			if i >= limit {
				break
			}
			resp.Rules = append(resp.Rules, RuleJSON{
				Antecedent: s.itemsToJSON(rule.Antecedent),
				Consequent: s.itemsToJSON(rule.Consequent),
				Support:    rule.Support,
				Confidence: rule.Confidence,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) itemsToJSON(set mining.Itemset) map[string]string {
	out := make(map[string]string, len(set))
	for _, it := range set {
		a := s.schema.Attrs[it.Attr]
		out[a.Name] = a.Categories[it.Value]
	}
	return out
}

func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad %s=%q", ErrService, key, raw)
	}
	return v, nil
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%w: bad %s=%q", ErrService, key, raw)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
