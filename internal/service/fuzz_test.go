package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// FuzzSubmit throws arbitrary bytes at the submission endpoint: the
// server must never panic, must answer 202 only for well-formed records,
// and its record count must change only on acceptance.
func FuzzSubmit(f *testing.F) {
	srv, err := NewServer(fuzzSchema(), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Add([]byte(`{"a":"a0","b":"b1","c":"c2"}`))
	f.Add([]byte(`{"a":"a0"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"a":1,"b":2,"c":3}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		before := srv.N()
		req := httptest.NewRequest(http.MethodPost, "/v1/submit", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		after := srv.N()
		switch rec.Code {
		case http.StatusAccepted:
			if after != before+1 {
				t.Fatalf("202 but count %d -> %d", before, after)
			}
		case http.StatusBadRequest:
			if after != before {
				t.Fatalf("400 but count changed %d -> %d", before, after)
			}
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
	})
}

// fuzzSchema mirrors serviceSchema without needing a *testing.T.
func fuzzSchema() *dataset.Schema {
	return dataset.MustSchema("svc", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
	})
}
