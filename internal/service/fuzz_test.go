package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// FuzzSubmit throws arbitrary bytes at the submission endpoint: the
// server must never panic, must answer 202 only for well-formed records,
// and its record count must change only on acceptance.
func FuzzSubmit(f *testing.F) {
	srv, err := NewServer(fuzzSchema(), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Add([]byte(`{"a":"a0","b":"b1","c":"c2"}`))
	f.Add([]byte(`{"a":"a0"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"a":1,"b":2,"c":3}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		before := srv.N()
		req := httptest.NewRequest(http.MethodPost, "/v1/submit", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		after := srv.N()
		switch rec.Code {
		case http.StatusAccepted:
			if after != before+1 {
				t.Fatalf("202 but count %d -> %d", before, after)
			}
		case http.StatusBadRequest:
			if after != before {
				t.Fatalf("400 but count changed %d -> %d", before, after)
			}
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
	})
}

// fuzzSchema mirrors serviceSchema without needing a *testing.T.
func fuzzSchema() *dataset.Schema {
	return dataset.MustSchema("svc", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
	})
}

// FuzzQuery throws arbitrary bytes at the interactive-query endpoint:
// the server must never panic and must answer 200 only for well-formed
// filter batches — every 200 carries one estimate per filter, all based
// on the same record count. Unknown attributes, duplicate attributes
// within one filter, empty filter lists, over-limit batches, and
// malformed JSON must all answer 4xx.
func FuzzQuery(f *testing.F) {
	srv, err := NewServer(fuzzSchema(), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, WithQueryLimit(64))
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	handler := srv.Handler()
	// A non-empty collection so well-formed batches reach the estimator.
	for i := 0; i < 10; i++ {
		if err := srv.ctr().Add(dataset.Record{i % 3, i % 2, i % 4}); err != nil {
			f.Fatal(err)
		}
	}

	f.Add([]byte(`{"filters": [{}]}`))
	f.Add([]byte(`{"filters": [{"a":"a0"},{"a":"a1","b":"b0"},{"a":"a2","b":"b1","c":"c3"}]}`))
	f.Add([]byte(`{"filters": [{"zzz":"a0"}]}`))
	f.Add([]byte(`{"filters": [{"a":"a0","a":"a1"}]}`))
	f.Add([]byte(`{"filters": []}`))
	f.Add([]byte(`{"filters": [` + strings.Repeat(`{},`, 64) + `{}]}`))
	f.Add([]byte(`{"filters": [{"a":1}]}`))
	f.Add([]byte(`{"filters": [{"a":{"b":"c"}}]}`))
	f.Add([]byte(`{"filters": ["a=a0"]}`))
	f.Add([]byte(`{"filters"`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			var qr QueryResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
				t.Fatalf("200 with undecodable body %q: %v", rec.Body.Bytes(), err)
			}
			if len(qr.Estimates) == 0 || len(qr.Estimates) > srv.QueryLimit() {
				t.Fatalf("200 with %d estimates for body %q", len(qr.Estimates), body)
			}
			for _, e := range qr.Estimates {
				if e.N != qr.Records {
					t.Fatalf("estimate n %d != records %d for body %q", e.N, qr.Records, body)
				}
				if e.Lo > e.Count || e.Count > e.Hi {
					t.Fatalf("interval [%v, %v] misses point %v for body %q", e.Lo, e.Hi, e.Count, body)
				}
			}
		case http.StatusBadRequest:
			// rejected — fine (the collection is non-empty, so no 409 here)
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
	})
}

// FuzzMineJobSubmit throws arbitrary bytes at the job-submission
// endpoint: the server must never panic and must answer 202 (job
// accepted — any accepted params must be valid after normalization) or
// 400, nothing else. The jobs themselves run against an empty
// collection and fail gracefully; the submission contract is what is
// under fuzz here.
func FuzzMineJobSubmit(f *testing.F) {
	srv, err := NewServer(fuzzSchema(), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, WithMineWorkers(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	handler := srv.Handler()

	f.Add([]byte(`{"minsup":0.1,"minconf":0.5,"limit":10,"maxlen":2}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"minsup":-1}`))
	f.Add([]byte(`{"minsup":1e308}`))
	f.Add([]byte(`{"limit":-5,"maxlen":-5}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/mine-jobs", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusAccepted:
			var jr JobResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &jr); err != nil {
				t.Fatalf("202 with undecodable body %q: %v", rec.Body.Bytes(), err)
			}
			if jr.ID == "" {
				t.Fatalf("accepted job without id: %q", rec.Body.Bytes())
			}
			p := jr.Params
			if !(p.MinSupport > 0 && p.MinSupport <= 1) || p.MinConf < 0 || p.MinConf > 1 || p.Limit < 0 || p.MaxLen < 0 {
				t.Fatalf("accepted invalid params %+v", p)
			}
		case http.StatusBadRequest:
			// rejected — fine
		case http.StatusServiceUnavailable:
			// The fuzz engine can outrun the single worker and fill the
			// 1024-deep queue; the documented queue-full rejection is
			// correct behavior, not a finding.
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
	})
}

// FuzzMineJobGet fuzzes job-id lookup against a store holding one live
// done job and one TTL-evicted job: the live id must answer 200 with a
// result, every other id — including the expired one — must answer 404,
// and nothing may panic on arbitrary path segments.
func FuzzMineJobGet(f *testing.F) {
	srv, err := NewServer(fuzzSchema(), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, WithMineWorkers(1), WithJobTTL(time.Minute))
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	handler := srv.Handler()

	// Seed data, then complete one job that will be TTL-evicted and one
	// that stays live. The store clock is frozen so eviction is driven
	// deterministically from the fuzz setup, not wall time.
	now := time.Now()
	srv.jobs.mu.Lock()
	srv.jobs.now = func() time.Time { return now }
	srv.jobs.mu.Unlock()
	if err := srv.ctr().Add(dataset.Record{0, 0, 0}); err != nil {
		f.Fatal(err)
	}
	runJob := func() string {
		j, err := srv.jobs.submit(MineParams{MinSupport: 0.1, Limit: 10})
		if err != nil {
			f.Fatal(err)
		}
		if err := j.await(context.Background()); err != nil {
			f.Fatal(err)
		}
		return j.id
	}
	expiredID := runJob()
	srv.jobs.mu.Lock()
	now = now.Add(2 * time.Minute) // expires the first job...
	srv.jobs.mu.Unlock()
	liveID := runJob() // ...while this one stays within TTL

	f.Add(liveID)
	f.Add(expiredID)
	f.Add("")
	f.Add("mj-999999")
	f.Add("../v1/stats")
	f.Add("%2e%2e")
	f.Add("mj-1\x00")
	f.Fuzz(func(t *testing.T, id string) {
		req := httptest.NewRequest(http.MethodGet, "/v1/mine-jobs/"+url.PathEscape(id), nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch {
		case id == liveID:
			if rec.Code != http.StatusOK {
				t.Fatalf("live job returned %d", rec.Code)
			}
			var jr JobResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &jr); err != nil || jr.State != JobDone || jr.Result == nil {
				t.Fatalf("live job body %q (err %v)", rec.Body.Bytes(), err)
			}
		default:
			// Unknown and TTL-evicted ids are indistinguishable. Ids like
			// "." or ".." survive PathEscape and get a ServeMux
			// path-canonicalization redirect instead — also fine, as long
			// as nothing panics or leaks a 200.
			if rec.Code != http.StatusNotFound && rec.Code != http.StatusMovedPermanently {
				t.Fatalf("id %q returned %d", id, rec.Code)
			}
		}
	})
}
