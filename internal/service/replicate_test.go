package service

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/mining"
)

// submitN pushes n random (nominally already-perturbed) records through
// the HTTP submit path.
func submitN(t *testing.T, srv *Server, url string, rng *rand.Rand, n int) {
	t.Helper()
	client := &http.Client{}
	for i := 0; i < n; i++ {
		rj := make(RecordJSON, srv.schema.M())
		for _, a := range srv.schema.Attrs {
			rj[a.Name] = a.Categories[rng.Intn(a.Cardinality())]
		}
		body, err := json.Marshal(rj)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(url+"/v1/submit", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit returned %s", resp.Status)
		}
	}
}

func TestReplicateFullAndIncremental(t *testing.T) {
	srv, ts := startServer(t)
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	submitN(t, srv, ts.URL, rng, 15)

	d1, err := client.Replicate(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Full() || d1.Records != 15 {
		t.Fatalf("first pull: full=%v records=%d", d1.Full(), d1.Records)
	}
	if d1.Fingerprint != mining.CompatibilityFingerprint(srv.schema, srv.matrix) {
		t.Fatal("fingerprint does not match server contract")
	}

	submitN(t, srv, ts.URL, rng, 7)
	d2, err := client.Replicate(d1.ToVersion, d1.Generation)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Full() {
		t.Fatal("second pull fell back to full despite retained baseline")
	}
	if d2.FromVersion != d1.ToVersion || d2.Records != 7 {
		t.Fatalf("second pull: from=%d (want %d) records=%d (want 7)", d2.FromVersion, d1.ToVersion, d2.Records)
	}

	// Replaying both deltas rebuilds the server's counter exactly.
	replica, err := mining.NewMaterializedGammaCounter(srv.schema, srv.matrix)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplyDelta(d1); err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplyDelta(d2); err != nil {
		t.Fatal(err)
	}
	if replica.N() != srv.N() {
		t.Fatalf("replica has %d records, server %d", replica.N(), srv.N())
	}
}

func TestReplicateGenerationMismatchForcesFull(t *testing.T) {
	srv, ts := startServer(t)
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	submitN(t, srv, ts.URL, rng, 10)

	d1, err := client.Replicate(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Save, add more, restore: the counter object is replaced, its
	// version line restarts, and its generation bumps.
	var state bytes.Buffer
	if err := srv.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	submitN(t, srv, ts.URL, rng, 5)
	if err := srv.LoadState(&state); err != nil {
		t.Fatal(err)
	}

	d2, err := client.Replicate(d1.ToVersion, d1.Generation)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Full() {
		t.Fatal("post-restore pull chained incrementally across generations")
	}
	if d2.Generation == d1.Generation {
		t.Fatalf("generation did not change across restore: %d", d2.Generation)
	}
	if d2.Records != 10 {
		t.Fatalf("post-restore full delta has %d records, want restored 10", d2.Records)
	}
}

func TestReplicateRejectsBadParams(t *testing.T) {
	_, ts := startServer(t)
	for _, q := range []string{"since=-1", "since=abc", "gen=zz"} {
		resp, err := ts.Client().Get(ts.URL + "/v1/replicate?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", q, resp.Status)
		}
	}
}

func TestFederatedServerRefusesSubmissions(t *testing.T) {
	srv, ts := startServer(t)
	coord, err := federation.NewCoordinator(srv.CounterScheme(), []string{"http://127.0.0.1:1"}, srv.ReplaceCounter)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := srv.EnableFederation(coord); err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableFederation(coord); err == nil {
		t.Fatal("double EnableFederation accepted")
	}
	if !srv.Federated() {
		t.Fatal("Federated() false after enable")
	}
	for _, path := range []string{"/v1/submit", "/v1/submit-batch"} {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s: status %s, want 403", path, resp.Status)
		}
	}
}

func TestReplaceCounterValidatesContract(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.ReplaceCounter(nil, nil); err == nil {
		t.Fatal("nil counter accepted")
	}
	other, err := dataset.NewSchema("other", []dataset.Attribute{
		{Name: "x", Categories: []string{"x0", "x1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	om, err := core.NewGammaDiagonal(other.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := mining.NewShardedGammaCounter(other, om, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ReplaceCounter(oc, nil); err == nil {
		t.Fatal("mismatched counter accepted")
	}

	// A matching counter swaps in atomically with its version vector.
	merged, err := mining.NewMaterializedGammaCounter(srv.schema, srv.matrix)
	if err != nil {
		t.Fatal(err)
	}
	rec := make(dataset.Record, srv.schema.M())
	if err := merged.Add(rec); err != nil {
		t.Fatal(err)
	}
	genBefore := srv.CounterGeneration()
	vector := map[string]uint64{"http://site-a": 42}
	if err := srv.ReplaceCounter(mining.NewShardedFromSnapshot(merged), vector); err != nil {
		t.Fatal(err)
	}
	if srv.N() != 1 {
		t.Fatalf("server records %d after replace, want 1", srv.N())
	}
	if srv.CounterGeneration() <= genBefore {
		t.Fatal("generation did not advance on replace")
	}
}
