package service

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/store"
)

// SaveState serializes the server's accumulated (perturbed) counts.
// Note what is — and is not — persisted: only the materialized marginal
// histograms of perturbed submissions. No raw records ever existed on
// the server, so none can leak from a state file.
func (s *Server) SaveState(w io.Writer) error {
	return s.ctr().Save(w)
}

// LoadState replaces the server's counter with a previously saved state.
// The state must have been saved for the same scheme, schema, and
// privacy contract — a state file written under a different scheme is
// rejected, never merged; the shard count is the live server's, not the
// file's, so state survives -shards changes across restarts. The swap
// resets the snapshot-version line, so every cached mining result is
// invalidated. Rejected on a store-backed server, whose durable state
// the store alone manages.
func (s *Server) LoadState(r io.Reader) error {
	if s.store != nil {
		return errStoreBacked
	}
	if s.windowed {
		// A restored counter has no ring and no expiry clock; swapping it
		// in would silently turn the window into a forever collection.
		return errWindowedServer
	}
	counter, err := mining.LoadLiveCounter(r, s.scheme, s.Shards())
	if err != nil {
		return err
	}
	// Invalidate FIRST: once the cleared cache and bumped generation are
	// in place, the new (counter, generation) pair is published as one
	// atomic unit, so no mining worker can pair the restored counter
	// with a pre-restore cache entry (see executeMine).
	gen := s.jobs.invalidateCache()
	s.met.observeCounter(counter)
	s.counter.Store(&counterRef{counter: counter, gen: gen})
	return nil
}

// PersistStateFile writes the state atomically AND durably: the temp
// file is fsynced before the rename, and the parent directory after it
// — without the directory fsync a power loss can roll the rename back
// even though the file's own bytes reached disk.
func (s *Server) PersistStateFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".frapp-state-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := s.SaveState(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return store.SyncDir(dir)
}

// sweepStateTemps removes orphaned .frapp-state-* temp files next to a
// state file — the residue of a PersistStateFile that crashed between
// create and rename. Best-effort: sweep failures never block startup.
func sweepStateTemps(path string) {
	matches, err := filepath.Glob(filepath.Join(filepath.Dir(path), ".frapp-state-*"))
	if err != nil {
		return
	}
	for _, m := range matches {
		os.Remove(m)
	}
}

// NewServerWithState builds a server, restoring state from path when the
// file exists. A missing file is not an error — the server starts empty.
// Stale temp files from interrupted persists are swept first. On a
// failed restore the already-started mining worker pool is shut down
// before returning, so retry loops don't leak goroutines; an undecodable
// file is reported with the path and the operator's options, not raw
// decoder internals.
func NewServerWithState(schema *dataset.Schema, spec core.PrivacySpec, path string, opts ...Option) (*Server, error) {
	sweepStateTemps(path)
	srv, err := NewServer(schema, spec, opts...)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return srv, nil
	}
	if err != nil {
		srv.Close()
		return nil, err
	}
	defer f.Close()
	if err := srv.LoadState(f); err != nil {
		srv.Close()
		if errors.Is(err, mining.ErrCorruptState) {
			return nil, fmt.Errorf("state file %s is unreadable (restore it from a backup, or delete it to start empty): %w", path, err)
		}
		return nil, fmt.Errorf("restoring state from %s: %w", path, err)
	}
	return srv, nil
}
