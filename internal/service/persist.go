package service

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
)

// SaveState serializes the server's accumulated (perturbed) counts.
// Note what is — and is not — persisted: only the materialized marginal
// histograms of perturbed submissions. No raw records ever existed on
// the server, so none can leak from a state file.
func (s *Server) SaveState(w io.Writer) error {
	return s.ctr().Save(w)
}

// LoadState replaces the server's counter with a previously saved state.
// The state must have been saved for the same scheme, schema, and
// privacy contract — a state file written under a different scheme is
// rejected, never merged; the shard count is the live server's, not the
// file's, so state survives -shards changes across restarts. The swap
// resets the snapshot-version line, so every cached mining result is
// invalidated.
func (s *Server) LoadState(r io.Reader) error {
	counter, err := mining.LoadLiveCounter(r, s.scheme, s.Shards())
	if err != nil {
		return err
	}
	// Invalidate FIRST: once the cleared cache and bumped generation are
	// in place, the new (counter, generation) pair is published as one
	// atomic unit, so no mining worker can pair the restored counter
	// with a pre-restore cache entry (see executeMine).
	gen := s.jobs.invalidateCache()
	s.counter.Store(&counterRef{counter: counter, gen: gen})
	return nil
}

// PersistStateFile writes the state atomically (temp file + rename) so a
// crash mid-write can never corrupt the previous state.
func (s *Server) PersistStateFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".frapp-state-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if err := s.SaveState(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// NewServerWithState builds a server, restoring state from path when the
// file exists. A missing file is not an error — the server starts empty.
// On a failed restore the already-started mining worker pool is shut
// down before returning, so retry loops don't leak goroutines.
func NewServerWithState(schema *dataset.Schema, spec core.PrivacySpec, path string, opts ...Option) (*Server, error) {
	srv, err := NewServer(schema, spec, opts...)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return srv, nil
	}
	if err != nil {
		srv.Close()
		return nil, err
	}
	defer f.Close()
	if err := srv.LoadState(f); err != nil {
		srv.Close()
		return nil, fmt.Errorf("restoring state from %s: %w", path, err)
	}
	return srv, nil
}
