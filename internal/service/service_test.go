package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func serviceSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema("svc", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func startServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, core.PrivacySpec{Rho1: 0.05, Rho2: 0.5}); !errors.Is(err, ErrService) {
		t.Fatal("nil schema accepted")
	}
	if _, err := NewServer(serviceSchema(t), core.PrivacySpec{Rho1: 0.9, Rho2: 0.5}); err == nil {
		t.Fatal("bad privacy spec accepted")
	}
}

func TestSchemaEndpoint(t *testing.T) {
	_, ts := startServer(t)
	resp, err := ts.Client().Get(ts.URL + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Name != "svc" || len(sr.Attributes) != 3 {
		t.Fatalf("schema response %+v", sr)
	}
	if math.Abs(sr.Privacy.Gamma-19) > 1e-9 {
		t.Fatalf("gamma = %v", sr.Privacy.Gamma)
	}
}

func TestSubmitValidation(t *testing.T) {
	srv, ts := startServer(t)
	post := func(body string) int {
		resp, err := ts.Client().Post(ts.URL+"/v1/submit", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"a":"a0","b":"b1","c":"c2"}`); code != http.StatusAccepted {
		t.Fatalf("valid submit returned %d", code)
	}
	if code := post(`{"a":"a0"}`); code != http.StatusBadRequest {
		t.Fatalf("short record returned %d", code)
	}
	if code := post(`{"a":"nope","b":"b1","c":"c2"}`); code != http.StatusBadRequest {
		t.Fatalf("bad category returned %d", code)
	}
	if code := post(`{"a":"a0","b":"b1","x":"c2"}`); code != http.StatusBadRequest {
		t.Fatalf("bad attribute returned %d", code)
	}
	if code := post(`not json`); code != http.StatusBadRequest {
		t.Fatalf("garbage returned %d", code)
	}
	if srv.N() != 1 {
		t.Fatalf("server stored %d records, want 1", srv.N())
	}
}

func TestMineRequiresData(t *testing.T) {
	_, ts := startServer(t)
	resp, err := ts.Client().Get(ts.URL + "/v1/mine")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mine on empty server returned %d", resp.StatusCode)
	}
}

func TestMineBadParams(t *testing.T) {
	_, ts := startServer(t)
	for _, q := range []string{"minsup=zzz", "minconf=zzz", "limit=-3", "limit=zz"} {
		resp, err := ts.Client().Get(ts.URL + "/v1/mine?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q returned %d", q, resp.StatusCode)
		}
	}
}

func TestClientEndToEnd(t *testing.T) {
	srv, ts := startServer(t)
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(client.Gamma()-19) > 1e-9 {
		t.Fatalf("client gamma %v", client.Gamma())
	}
	// Population skewed toward {0,0,0}.
	rng := rand.New(rand.NewSource(3))
	var recs []dataset.Record
	for i := 0; i < 6000; i++ {
		if rng.Float64() < 0.5 {
			recs = append(recs, dataset.Record{0, 0, 0})
		} else {
			recs = append(recs, dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)})
		}
	}
	// Mix of single and batch submissions.
	for _, rec := range recs[:50] {
		if err := client.Submit(rec, rng); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.SubmitBatch(recs[50:], rng); err != nil {
		t.Fatal(err)
	}
	if srv.N() != len(recs) {
		t.Fatalf("server has %d records, want %d", srv.N(), len(recs))
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(recs) || math.Abs(stats.Gamma-19) > 1e-9 {
		t.Fatalf("stats %+v", stats)
	}
	mr, err := client.Mine(0.2, 0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Records != len(recs) || len(mr.Counts) == 0 {
		t.Fatalf("mine response %+v", mr)
	}
	// The dominant planted triple must be reconstructed as frequent.
	found := false
	for _, is := range mr.Itemsets {
		if is.Items["a"] == "a0" && is.Items["b"] == "b0" && is.Items["c"] == "c0" {
			found = true
			if math.Abs(is.Support-0.52) > 0.12 {
				t.Fatalf("planted triple support %v, want ≈0.52", is.Support)
			}
		}
	}
	if !found {
		t.Fatal("planted triple not mined through the service")
	}
	for _, r := range mr.Rules {
		if r.Confidence <= 0 || r.Confidence > 1 {
			t.Fatalf("bad rule confidence %v", r.Confidence)
		}
	}
}

func TestClientRandomized(t *testing.T) {
	_, ts := startServer(t)
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()), WithClientRandomization(0.5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if err := client.Submit(dataset.Record{0, 0, 0}, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(ts.URL, WithHTTPClient(ts.Client()), WithClientRandomization(2)); !errors.Is(err, ErrService) {
		t.Fatal("excessive randomization accepted")
	}
}

func TestClientRejectsInvalidRecord(t *testing.T) {
	_, ts := startServer(t)
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if err := client.Submit(dataset.Record{9, 9, 9}, rng); err == nil {
		t.Fatal("invalid record accepted client-side")
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	srv, ts := startServer(t)
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				rec := dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}
				if err := client.Submit(rec, rng); err != nil {
					errs <- err
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.N() != workers*perWorker {
		t.Fatalf("server has %d records, want %d", srv.N(), workers*perWorker)
	}
}

func TestServerShardsOption(t *testing.T) {
	srv, err := NewServer(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Shards() != 3 {
		t.Fatalf("shards = %d, want 3", srv.Shards())
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	if err := client.Submit(dataset.Record{0, 0, 0}, rng); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 3 || stats.Records != 1 {
		t.Fatalf("stats %+v", stats)
	}
	// Default servers stripe per core.
	def, err := NewServer(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	if def.Shards() < 1 {
		t.Fatalf("default shards = %d", def.Shards())
	}
}

func TestServerStateAcrossShardCounts(t *testing.T) {
	srv, ts := startServer(t)
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	var recs []dataset.Record
	for i := 0; i < 300; i++ {
		recs = append(recs, dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)})
	}
	if err := client.SubmitBatch(recs, rng); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// Restore under a different -shards setting: nothing lost.
	restored, err := NewServer(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.N() != srv.N() || restored.Shards() != 2 {
		t.Fatalf("restored N=%d shards=%d, want N=%d shards=2", restored.N(), restored.Shards(), srv.N())
	}
}

func TestNewClientBadServer(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	}))
	defer bad.Close()
	if _, err := NewClient(bad.URL, WithHTTPClient(bad.Client())); err == nil {
		t.Fatal("teapot server accepted")
	}
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("{{{{"))
	}))
	defer garbage.Close()
	if _, err := NewClient(garbage.URL, WithHTTPClient(garbage.Client())); err == nil {
		t.Fatal("garbage schema accepted")
	}
}
