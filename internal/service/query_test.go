package service

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// postQuery POSTs a raw body to /v1/query and returns status + decoded
// response (when 200).
func postQuery(t *testing.T, ts_url string, httpc *http.Client, body string) (int, *QueryResponse) {
	t.Helper()
	resp, err := httpc.Post(ts_url+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &qr
}

func TestQueryEndpoint(t *testing.T) {
	srv, ts := startServer(t)
	// Deterministic ingestion straight into the counter: 60 records of
	// {0,0,0} and 40 of {1,1,1}.
	for i := 0; i < 100; i++ {
		rec := dataset.Record{0, 0, 0}
		if i >= 60 {
			rec = dataset.Record{1, 1, 1}
		}
		if err := srv.ctr().Add(rec); err != nil {
			t.Fatal(err)
		}
	}

	body := `{"filters": [{}, {"a":"a0"}, {"a":"a0","b":"b0"}, {"a":"a1","b":"b1","c":"c1"}]}`
	code, qr := postQuery(t, ts.URL, ts.Client(), body)
	if code != http.StatusOK {
		t.Fatalf("query returned %d", code)
	}
	if qr.Records != 100 {
		t.Fatalf("records %d, want 100", qr.Records)
	}
	if qr.SnapshotVersion != 100 {
		t.Fatalf("snapshot_version %d, want 100 (one bump per record)", qr.SnapshotVersion)
	}
	if len(qr.Estimates) != 4 {
		t.Fatalf("%d estimates for 4 filters", len(qr.Estimates))
	}
	// The empty filter is exact; the others were ingested UNPERTURBED
	// here, so the reconstruction still answers, just with noise-free
	// inputs: the estimator is a fixed affine map of the true match
	// count, and its interval must bracket its own point estimate.
	if e := qr.Estimates[0]; e.Count != 100 || e.Lo != 100 || e.Hi != 100 || e.N != 100 {
		t.Fatalf("empty filter estimate %+v", e)
	}
	for i, e := range qr.Estimates {
		if e.N != qr.Records {
			t.Fatalf("estimate %d: n %d != records %d", i, e.N, qr.Records)
		}
		if e.Lo > e.Count || e.Count > e.Hi {
			t.Fatalf("estimate %d: interval [%v, %v] misses point %v", i, e.Lo, e.Hi, e.Count)
		}
	}

	// Submissions bump the version; a later query reports it.
	if err := srv.ctr().Add(dataset.Record{2, 0, 3}); err != nil {
		t.Fatal(err)
	}
	code, qr = postQuery(t, ts.URL, ts.Client(), `{"filters": [{}]}`)
	if code != http.StatusOK || qr.SnapshotVersion != 101 || qr.Records != 101 {
		t.Fatalf("post-submit query: code %d, %+v", code, qr)
	}
	if qr.CounterGeneration != 0 {
		t.Fatalf("fresh server reports generation %d", qr.CounterGeneration)
	}
}

// TestQueryGenerationAcrossRestore: a state restore restarts the
// version line, so version-based client caching would alias two
// different collections; the response's counter generation is what
// disambiguates, and it must bump on restore in both /v1/query and
// /v1/stats.
func TestQueryGenerationAcrossRestore(t *testing.T) {
	srv, ts := startServer(t)
	for i := 0; i < 50; i++ {
		if err := srv.ctr().Add(dataset.Record{0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	var state strings.Builder
	if err := srv.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	_, before := postQuery(t, ts.URL, ts.Client(), `{"filters": [{"a":"a0"}]}`)

	if err := srv.LoadState(strings.NewReader(state.String())); err != nil {
		t.Fatal(err)
	}
	code, after := postQuery(t, ts.URL, ts.Client(), `{"filters": [{"a":"a0"}]}`)
	if code != http.StatusOK {
		t.Fatalf("post-restore query returned %d", code)
	}
	// Identical content, identical version (the restored line restarts
	// at the record count) — only the generation tells the epochs apart.
	if after.SnapshotVersion != before.SnapshotVersion {
		t.Fatalf("restored version %d, want %d", after.SnapshotVersion, before.SnapshotVersion)
	}
	if after.CounterGeneration != before.CounterGeneration+1 {
		t.Fatalf("generation %d after restore, was %d", after.CounterGeneration, before.CounterGeneration)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.CounterGeneration != after.CounterGeneration || sr.SnapshotVersion != after.SnapshotVersion {
		t.Fatalf("stats (gen %d, version %d) disagrees with query (gen %d, version %d)",
			sr.CounterGeneration, sr.SnapshotVersion, after.CounterGeneration, after.SnapshotVersion)
	}
}

func TestQueryEndpointRejections(t *testing.T) {
	srv, ts := startServer(t, WithQueryLimit(8))
	if got := srv.QueryLimit(); got != 8 {
		t.Fatalf("QueryLimit = %d", got)
	}

	// Empty collection: well-formed queries answer 409.
	if code, _ := postQuery(t, ts.URL, ts.Client(), `{"filters": [{}]}`); code != http.StatusConflict {
		t.Fatalf("empty collection returned %d, want 409", code)
	}
	if err := srv.ctr().Add(dataset.Record{0, 0, 0}); err != nil {
		t.Fatal(err)
	}

	huge := `{"filters": [` + strings.Repeat(`{},`, 8) + `{}]}` // 9 > limit 8
	cases := map[string]string{
		"malformed JSON":     `{"filters": [`,
		"non-object body":    `[1,2,3]`,
		"unknown field":      `{"filtres": [{}]}`,
		"empty body":         ``,
		"no filters":         `{}`,
		"empty filter list":  `{"filters": []}`,
		"unknown attribute":  `{"filters": [{"zzz":"a0"}]}`,
		"unknown category":   `{"filters": [{"a":"zzz"}]}`,
		"duplicate attr":     `{"filters": [{"a":"a0","a":"a1"}]}`,
		"non-string value":   `{"filters": [{"a":1}]}`,
		"nested value":       `{"filters": [{"a":{"x":"y"}}]}`,
		"filter not object":  `{"filters": ["a=a0"]}`,
		"batch beyond limit": huge,
	}
	for name, body := range cases {
		if code, _ := postQuery(t, ts.URL, ts.Client(), body); code != http.StatusBadRequest {
			t.Fatalf("%s returned %d, want 400", name, code)
		}
	}
	// Limit-sized batch is accepted.
	ok := `{"filters": [` + strings.Repeat(`{},`, 7) + `{}]}` // exactly 8
	if code, _ := postQuery(t, ts.URL, ts.Client(), ok); code != http.StatusOK {
		t.Fatalf("limit-sized batch rejected")
	}
}

// TestClientQueryHelpers round-trips Query/QueryAll through a live
// server and cross-checks against the statistical ground truth: with a
// large skewed ingest, the true share of the skew record must fall
// inside nearly every returned interval.
func TestClientQueryHelpers(t *testing.T) {
	_, ts := startServer(t)
	client := seedSkewed(t, ts.URL, ts.Client(), 4000, 17) // ~50% {0,0,0} + uniform rest
	qr, err := client.QueryAll([]QueryFilter{
		{},
		{"a": "a0"},
		{"a": "a0", "b": "b0", "c": "c0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if qr.Records != 4000 || len(qr.Estimates) != 3 {
		t.Fatalf("response %+v", qr)
	}
	if e := qr.Estimates[0]; e.Count != 4000 {
		t.Fatalf("empty filter count %v", e.Count)
	}
	// seedSkewed: P(a=0) = 0.5 + 0.5/3; the CI is a 95% statement, so
	// demand only that the truth is within 4 standard errors.
	truth := 4000 * (0.5 + 0.5/3)
	if e := qr.Estimates[1]; mathAbs(e.Count-truth) > 4*e.StdErr {
		t.Fatalf("a=a0 estimate %+v vs truth %v", e, truth)
	}
	single, err := client.Query(QueryFilter{"a": "a0"})
	if err != nil {
		t.Fatal(err)
	}
	if single.N != 4000 {
		t.Fatalf("single estimate %+v", single)
	}
	if _, err := client.Query(QueryFilter{"a": "nope"}); err == nil {
		t.Fatal("unknown category accepted")
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestQueryPathRetainsNoDatabase is the acceptance check that the
// server-side query path cannot scan records: no dataset.Database (and
// no slice of dataset.Record) is reachable from the Server type or from
// its live counter. The walk is over TYPES, so it proves the server
// cannot even hold a database, as opposed to happening not to.
func TestQueryPathRetainsNoDatabase(t *testing.T) {
	srv, ts := startServer(t)
	if err := srv.ctr().Add(dataset.Record{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if code, _ := postQuery(t, ts.URL, ts.Client(), `{"filters": [{"a":"a0"}]}`); code != http.StatusOK {
		t.Fatalf("query returned %d", code)
	}

	forbidden := map[reflect.Type]bool{
		reflect.TypeOf(dataset.Database{}): true,
		reflect.TypeOf([]dataset.Record{}): true,
	}
	visited := map[reflect.Type]bool{}
	var walk func(ty reflect.Type, path string)
	walk = func(ty reflect.Type, path string) {
		if visited[ty] {
			return
		}
		visited[ty] = true
		if forbidden[ty] {
			t.Fatalf("record storage type %v reachable at %s", ty, path)
		}
		switch ty.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Chan:
			walk(ty.Elem(), path+"/*")
		case reflect.Map:
			walk(ty.Key(), path+"/key")
			walk(ty.Elem(), path+"/val")
		case reflect.Struct:
			for i := 0; i < ty.NumField(); i++ {
				f := ty.Field(i)
				walk(f.Type, path+"."+f.Name)
			}
		}
	}
	// atomic.Pointer[T] keeps T reachable through a [0]*T field, so the
	// counter is covered by the Server walk too; walking the live
	// counter's dynamic type as well makes that explicit.
	walk(reflect.TypeOf(srv).Elem(), "Server")
	walk(reflect.TypeOf(srv.ctr()).Elem(), "ShardedGammaCounter")
}

// TestQueryMatchesSweepConsistency: all estimates of one batch come
// from one sweep, so even interleaved ingestion cannot make two
// estimates of a response disagree on N. (Sequential here; the
// concurrent version lives in the stress test.)
func TestQueryBatchSingleSweep(t *testing.T) {
	srv, ts := startServer(t, WithShards(3))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		if err := srv.ctr().Add(dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}); err != nil {
			t.Fatal(err)
		}
	}
	code, qr := postQuery(t, ts.URL, ts.Client(), `{"filters": [{"a":"a0"},{"b":"b1"},{"c":"c3"},{}]}`)
	if code != http.StatusOK {
		t.Fatalf("query returned %d", code)
	}
	for i, e := range qr.Estimates {
		if e.N != qr.Records {
			t.Fatalf("estimate %d has n %d, response records %d", i, e.N, qr.Records)
		}
	}
}
