package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// seedSkewed ingests a population skewed toward {0,0,0} so mining at a
// moderate support threshold has a planted frequent triple to find.
func seedSkewed(t *testing.T, ts_url string, httpc *http.Client, n int, seed int64) *Client {
	t.Helper()
	client, err := NewClient(ts_url, WithHTTPClient(httpc))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var recs []dataset.Record
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			recs = append(recs, dataset.Record{0, 0, 0})
		} else {
			recs = append(recs, dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)})
		}
	}
	if err := client.SubmitBatch(recs, rng); err != nil {
		t.Fatal(err)
	}
	return client
}

func TestMineJobLifecycle(t *testing.T) {
	srv, ts := startServer(t)
	client := seedSkewed(t, ts.URL, ts.Client(), 3000, 21)

	jr, err := client.SubmitMineJob(MineParams{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if jr.ID == "" || (jr.State != JobQueued && jr.State != JobRunning && jr.State != JobDone) {
		t.Fatalf("submitted job %+v", jr)
	}
	if jr.Result != nil {
		t.Fatal("submission response carries a result")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done, err := client.AwaitMineJob(ctx, jr.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != JobDone || done.Result == nil || done.FinishedAt == nil {
		t.Fatalf("awaited job %+v", done)
	}
	if done.Result.Records != srv.N() {
		t.Fatalf("job mined %d records, server has %d", done.Result.Records, srv.N())
	}
	if done.SnapshotVersion != uint64(srv.N()) {
		t.Fatalf("snapshot version %d, want %d", done.SnapshotVersion, srv.N())
	}
	if done.Result.SnapshotVersion != done.SnapshotVersion {
		t.Fatalf("result version %d != job version %d", done.Result.SnapshotVersion, done.SnapshotVersion)
	}
	// Defaults were applied.
	if done.Params.Limit != defaultMineLimit {
		t.Fatalf("params %+v", done.Params)
	}

	// The list endpoint reports the job without its payload.
	list, err := client.MineJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != jr.ID || list[0].State != JobDone || list[0].Result != nil {
		t.Fatalf("job list %+v", list)
	}
}

func TestMineJobCacheSingleAprioriRun(t *testing.T) {
	srv, ts := startServer(t)
	client := seedSkewed(t, ts.URL, ts.Client(), 3000, 22)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	p := MineParams{MinSupport: 0.2, Limit: 50}
	first, err := client.MineAsync(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first mine reported cached")
	}
	second, err := client.MineAsync(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical re-mine of unchanged counter not served from cache")
	}
	if runs := srv.AprioriRuns(); runs != 1 {
		t.Fatalf("Apriori ran %d times, want 1", runs)
	}
	if second.SnapshotVersion != first.SnapshotVersion {
		t.Fatalf("cache hit changed version %d -> %d", first.SnapshotVersion, second.SnapshotVersion)
	}

	// Different minconf/limit reuse the cached frequent itemsets — rule
	// generation and truncation are per-request post-processing.
	withRules, err := client.MineAsync(ctx, MineParams{MinSupport: 0.2, MinConf: 0.3, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !withRules.Cached || srv.AprioriRuns() != 1 {
		t.Fatalf("minconf/limit variation re-ran Apriori (runs=%d cached=%v)", srv.AprioriRuns(), withRules.Cached)
	}
	if len(withRules.Itemsets) > 10 {
		t.Fatalf("limit ignored: %d itemsets", len(withRules.Itemsets))
	}

	// A different minsup is a different computation.
	if _, err := client.MineAsync(ctx, MineParams{MinSupport: 0.3}); err != nil {
		t.Fatal(err)
	}
	if runs := srv.AprioriRuns(); runs != 2 {
		t.Fatalf("Apriori ran %d times after minsup change, want 2", runs)
	}

	// An intervening submission bumps the snapshot version and forces
	// recomputation for the original params.
	rng := rand.New(rand.NewSource(23))
	if err := client.Submit(dataset.Record{1, 1, 1}, rng); err != nil {
		t.Fatal(err)
	}
	third, err := client.MineAsync(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("mine after submission still served from cache")
	}
	if third.SnapshotVersion <= first.SnapshotVersion {
		t.Fatalf("version did not advance: %d -> %d", first.SnapshotVersion, third.SnapshotVersion)
	}
	if runs := srv.AprioriRuns(); runs != 3 {
		t.Fatalf("Apriori ran %d times after version bump, want 3", runs)
	}
}

func TestSyncMineSharesJobPoolAndCache(t *testing.T) {
	srv, ts := startServer(t)
	client := seedSkewed(t, ts.URL, ts.Client(), 2000, 24)

	first, err := client.Mine(0.2, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Mine(0.2, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || !second.Cached {
		t.Fatalf("sync mine cache flags: first=%v second=%v", first.Cached, second.Cached)
	}
	if runs := srv.AprioriRuns(); runs != 1 {
		t.Fatalf("sync mines ran Apriori %d times, want 1", runs)
	}
	// Sync mines are jobs too: both retained and pollable.
	list, err := client.MineJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("retained %d jobs, want 2", len(list))
	}
}

func TestMineJobMaxLen(t *testing.T) {
	_, ts := startServer(t)
	client := seedSkewed(t, ts.URL, ts.Client(), 2000, 25)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	capped, err := client.MineAsync(ctx, MineParams{MinSupport: 0.2, MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Counts) != 1 {
		t.Fatalf("maxlen=1 produced counts %v", capped.Counts)
	}
	full, err := client.MineAsync(ctx, MineParams{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Counts) <= 1 {
		t.Fatalf("unbounded mine produced counts %v", full.Counts)
	}
	if full.Cached {
		t.Fatal("different maxlen hit the cache")
	}
}

func TestMineJobValidation(t *testing.T) {
	_, ts := startServer(t)
	post := func(body string) int {
		resp, err := ts.Client().Post(ts.URL+"/v1/mine-jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"minsup": 1.5}`); code != http.StatusBadRequest {
		t.Fatalf("minsup>1 returned %d", code)
	}
	if code := post(`{"minsup": -0.1}`); code != http.StatusBadRequest {
		t.Fatalf("negative minsup returned %d", code)
	}
	if code := post(`{"minconf": 2}`); code != http.StatusBadRequest {
		t.Fatalf("minconf>1 returned %d", code)
	}
	if code := post(`{"limit": -1}`); code != http.StatusBadRequest {
		t.Fatalf("negative limit returned %d", code)
	}
	if code := post(`{"maxlen": -1}`); code != http.StatusBadRequest {
		t.Fatalf("negative maxlen returned %d", code)
	}
	if code := post(`not json`); code != http.StatusBadRequest {
		t.Fatalf("garbage returned %d", code)
	}
	// Empty body means defaults — accepted even on an empty collection
	// (the job itself then fails with "no submissions yet").
	if code := post(``); code != http.StatusAccepted {
		t.Fatalf("empty body returned %d", code)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/mine-jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job returned %d", resp.StatusCode)
	}
}

func TestMineJobEmptyCollectionFails(t *testing.T) {
	_, ts := startServer(t)
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	jr, err := client.SubmitMineJob(MineParams{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	failed, err := client.AwaitMineJob(ctx, jr.ID, time.Millisecond)
	if err == nil {
		t.Fatal("job on empty collection succeeded")
	}
	if failed == nil || failed.State != JobFailed || failed.Error == "" {
		t.Fatalf("failed job %+v", failed)
	}
}

func TestMineJobTTLEviction(t *testing.T) {
	srv, ts := startServer(t, WithJobTTL(time.Minute))
	client := seedSkewed(t, ts.URL, ts.Client(), 500, 26)

	// Drive the store clock manually so the test needs no sleeping.
	now := time.Now()
	srv.jobs.mu.Lock()
	srv.jobs.now = func() time.Time { return now }
	srv.jobs.mu.Unlock()

	jr, err := client.SubmitMineJob(MineParams{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := client.AwaitMineJob(ctx, jr.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Within TTL: still pollable.
	if _, err := client.MineJob(jr.ID); err != nil {
		t.Fatal(err)
	}
	// Past TTL: evicted, indistinguishable from unknown.
	srv.jobs.mu.Lock()
	now = now.Add(2 * time.Minute)
	srv.jobs.mu.Unlock()
	if _, err := client.MineJob(jr.ID); err == nil {
		t.Fatal("TTL-expired job still pollable")
	}
	list, err := client.MineJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("expired job still listed: %+v", list)
	}
}

func TestServerOptionsDefaults(t *testing.T) {
	srv, _ := startServer(t)
	if srv.MineWorkers() != defaultJobWorkers {
		t.Fatalf("default workers %d", srv.MineWorkers())
	}
	srv2, err := NewServer(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, WithMineWorkers(5), WithJobTTL(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.MineWorkers() != 5 || srv2.jobs.ttl != time.Second {
		t.Fatalf("options not applied: workers=%d ttl=%v", srv2.MineWorkers(), srv2.jobs.ttl)
	}
}

func TestStatsReportsJobPool(t *testing.T) {
	_, ts := startServer(t)
	client := seedSkewed(t, ts.URL, ts.Client(), 400, 27)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := client.MineAsync(ctx, MineParams{MinSupport: 0.2}); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotVersion != 400 || stats.MineRuns != 1 || stats.MineWorkers != defaultJobWorkers {
		t.Fatalf("stats %+v", stats)
	}
}

func TestLoadStateInvalidatesCache(t *testing.T) {
	srv, ts := startServer(t)
	client := seedSkewed(t, ts.URL, ts.Client(), 600, 28)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := client.MineAsync(ctx, MineParams{MinSupport: 0.2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	// Same version number (restored count), but the counter object was
	// replaced: the cache must have been dropped, so this re-runs.
	res, err := client.MineAsync(ctx, MineParams{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("cache survived a state restore")
	}
	if runs := srv.AprioriRuns(); runs != 2 {
		t.Fatalf("Apriori ran %d times, want 2", runs)
	}
}

// TestSyncMineExplicitZeroParams pins the query endpoint's pre-job
// semantics for explicit zeros: minsup=0 is rejected (only an ABSENT
// minsup means the default), and limit=0 is honored as "no itemsets in
// the response" rather than coerced to the default. The JSON job API
// deliberately differs — there zero means default.
func TestSyncMineExplicitZeroParams(t *testing.T) {
	_, ts := startServer(t)
	seedSkewed(t, ts.URL, ts.Client(), 500, 29)

	resp, err := ts.Client().Get(ts.URL + "/v1/mine?minsup=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("explicit minsup=0 returned %d", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/mine?minsup=0.2&limit=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limit=0 returned %d", resp.StatusCode)
	}
	var mr MineResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Itemsets) != 0 || len(mr.Counts) == 0 {
		t.Fatalf("limit=0 response: %d itemsets, counts %v", len(mr.Itemsets), mr.Counts)
	}
}
