package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mining"
)

// Job lifecycle states. A job moves queued → running → done|failed and
// never backwards; terminal jobs are retained for the configured TTL so
// clients can poll results, then evicted.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// MineParams are the parameters of one mining request, shared by the
// synchronous endpoint and the job API. Zero values mean defaults
// (minsup 0.02, limit 100); MaxLen 0 means unbounded itemset length.
type MineParams struct {
	MinSupport float64 `json:"minsup"`
	MinConf    float64 `json:"minconf"`
	Limit      int     `json:"limit"`
	MaxLen     int     `json:"maxlen"`
	// Window restricts the mine to the records of the last Window of
	// wall-clock time (a Go duration string, e.g. "24h"), rounded up to
	// whole ring buckets. Only valid on a windowed collection; empty
	// means the full collection.
	Window string `json:"window,omitempty"`
}

// windowDuration parses the Window parameter; ("", 0) when absent.
func (p MineParams) windowDuration() (time.Duration, error) {
	if p.Window == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(p.Window)
	if err != nil {
		return 0, fmt.Errorf("%w: bad window %q: %v", ErrService, p.Window, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("%w: window %q must be positive", ErrService, p.Window)
	}
	return d, nil
}

// applyDefaults replaces zero values with the endpoint defaults — used
// by the JSON job API, where an absent field decodes to zero. The query
// endpoint applies defaults only for ABSENT parameters (see
// mineParamsFromQuery), so an explicit minsup=0 there is still rejected
// and an explicit limit=0 still means "no itemsets in the response".
func (p *MineParams) applyDefaults() {
	if p.MinSupport == 0 {
		p.MinSupport = defaultMinSupport
	}
	if p.Limit == 0 {
		p.Limit = defaultMineLimit
	}
}

// validate checks ranges without touching values.
func (p MineParams) validate() error {
	if !(p.MinSupport > 0 && p.MinSupport <= 1) {
		return fmt.Errorf("%w: minsup %v not in (0,1]", ErrService, p.MinSupport)
	}
	if p.MinConf < 0 || p.MinConf > 1 {
		return fmt.Errorf("%w: minconf %v not in [0,1]", ErrService, p.MinConf)
	}
	if p.Limit < 0 {
		return fmt.Errorf("%w: negative limit %d", ErrService, p.Limit)
	}
	if p.MaxLen < 0 {
		return fmt.Errorf("%w: negative maxlen %d", ErrService, p.MaxLen)
	}
	_, err := p.windowDuration()
	return err
}

const (
	defaultMinSupport = 0.02
	defaultMineLimit  = 100
	defaultJobTTL     = 15 * time.Minute
	defaultJobWorkers = 2
	jobQueueCapacity  = 1024
	// maxRetainedJobs caps the finished jobs held for polling: the queue
	// capacity bounds pending work, but cache-hit jobs complete in
	// microseconds and would otherwise accumulate result payloads for
	// the whole TTL under a submission flood.
	maxRetainedJobs = 4096
	// maxCacheEntries bounds the result cache: version pruning handles a
	// changing collection, but on an UNCHANGED one every distinct
	// (minsup, maxlen) pair is a separate entry holding a full frequent-
	// itemset result, so a param-varying request stream needs a cap.
	maxCacheEntries = 64
)

// errServerClosed marks jobs failed because the server is shutting
// down — a server condition (503), not a bad request.
var errServerClosed = fmt.Errorf("%w: server shutting down", ErrService)

// JobResponse is the wire form of a mining job.
type JobResponse struct {
	ID     string     `json:"id"`
	State  string     `json:"state"`
	Params MineParams `json:"params"`
	// SnapshotVersion is the counter version the result is exact for
	// (set once the job ran).
	SnapshotVersion uint64 `json:"snapshot_version,omitempty"`
	// Cached reports that the result was served from the version-keyed
	// cache instead of a fresh Apriori run.
	Cached     bool          `json:"cached,omitempty"`
	CreatedAt  time.Time     `json:"created_at"`
	FinishedAt *time.Time    `json:"finished_at,omitempty"`
	Result     *MineResponse `json:"result,omitempty"`
	Error      string        `json:"error,omitempty"`
}

// job is the in-store representation. Fields past done are guarded by
// the store mutex.
type job struct {
	id      string
	params  MineParams
	done    chan struct{} // closed on terminal state
	state   string
	version uint64
	cached  bool
	created time.Time
	// started is when a worker picked the job up — the boundary between
	// the queued and running durations the state-latency metrics record.
	started time.Time
	// finished is the eviction clock: TTL counts from terminal state.
	finished time.Time
	result   *MineResponse
	err      error
}

// mineKey identifies one cacheable mining computation: the counter
// generation (bumped whenever the counter OBJECT is replaced by a state
// restore, which resets the version line), the counter content
// (snapshot version), and every parameter that changes the Apriori run
// itself. MinConf and Limit are deliberately absent — rule generation
// and truncation are cheap per-request post-processing over the cached
// frequent-itemset result.
type mineKey struct {
	gen     uint64
	version uint64
	minsup  float64
	scheme  string
	maxlen  int
	// window distinguishes computations over different time windows of
	// one windowed counter. The version alone does not: rotation bumps
	// the version, but two requests at the SAME version with different
	// windows mine different bucket unions.
	window time.Duration
}

// cacheEntry is one computed Apriori result.
type cacheEntry struct {
	records int
	result  *mining.Result
}

// jobStore owns the mining jobs, the bounded worker pool that executes
// them, and the snapshot-versioned result cache.
type jobStore struct {
	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for stable listing and TTL sweeps
	cache  map[mineKey]*cacheEntry
	closed bool

	nextID atomic.Uint64
	runs   atomic.Int64  // actual Apriori executions (cache misses)
	gen    atomic.Uint64 // counter generation; see mineKey
	// met, when set (WithTelemetry), receives rejection counts and
	// state-duration observations. Guarded by mu like the job state it
	// describes.
	met     *jobMetrics
	ttl     time.Duration
	now     func() time.Time // injectable for TTL tests
	queue   chan *job
	quit    chan struct{}
	workers int
	wg      sync.WaitGroup
}

// newJobStore starts the worker pool; run executes one mining request.
func newJobStore(workers int, ttl time.Duration, run func(MineParams) (*MineResponse, uint64, bool, error)) *jobStore {
	if workers <= 0 {
		workers = defaultJobWorkers
	}
	if ttl <= 0 {
		ttl = defaultJobTTL
	}
	st := &jobStore{
		jobs:    make(map[string]*job),
		cache:   make(map[mineKey]*cacheEntry),
		ttl:     ttl,
		now:     time.Now,
		queue:   make(chan *job, jobQueueCapacity),
		quit:    make(chan struct{}),
		workers: workers,
	}
	st.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go st.worker(run)
	}
	return st
}

func (st *jobStore) worker(run func(MineParams) (*MineResponse, uint64, bool, error)) {
	defer st.wg.Done()
	for {
		select {
		case <-st.quit:
			return
		case j := <-st.queue:
			st.setRunning(j)
			resp, version, cached, err := run(j.params)
			st.finish(j, resp, version, cached, err)
		}
	}
}

// close stops the workers and fails any still-queued jobs so awaiting
// clients unblock instead of hanging on a dead queue. Setting closed
// under the mutex first — the same mutex submit enqueues under — means
// no job can slip into the queue after the drain below.
func (st *jobStore) close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	st.mu.Unlock()
	close(st.quit)
	st.wg.Wait()
	for {
		select {
		case j := <-st.queue:
			st.finish(j, nil, 0, false, errServerClosed)
		default:
			return
		}
	}
}

// submit validates nothing (callers validate params first), enqueues
// the job, and registers it only once the enqueue succeeded — a full
// queue rejects the submission without leaving an orphan failed job in
// the listing or burning a retention slot. Enqueue and registration
// happen under one lock acquisition so a concurrent close() either
// sees the job in the queue or fails the submission — never a job
// stranded on a queue no worker will drain. (Workers also need the
// lock to touch the job, so registration completes before any worker
// state transition.)
func (st *jobStore) submit(p MineParams) (*job, error) {
	j := &job{
		id:      fmt.Sprintf("mj-%d", st.nextID.Add(1)),
		params:  p,
		done:    make(chan struct{}),
		state:   JobQueued,
		created: st.now(),
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil, errServerClosed
	}
	st.evictExpiredLocked()
	select {
	case st.queue <- j:
	default:
		if st.met != nil {
			st.met.rejected.Inc()
		}
		return nil, fmt.Errorf("%w: job queue full (%d pending)", ErrService, jobQueueCapacity)
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	return j, nil
}

// setMetrics installs the job instruments; taken under mu so workers
// already running observe the write.
func (st *jobStore) setMetrics(m *jobMetrics) {
	st.mu.Lock()
	st.met = m
	st.mu.Unlock()
}

func (st *jobStore) setRunning(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state == JobQueued {
		j.state = JobRunning
		j.started = st.now()
		if st.met != nil {
			st.met.queuedDur.Record(j.started.Sub(j.created))
		}
	}
}

func (st *jobStore) finish(j *job, resp *MineResponse, version uint64, cached bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state == JobDone || j.state == JobFailed {
		return
	}
	j.version = version
	j.cached = cached
	j.finished = st.now()
	if st.met != nil {
		if !j.started.IsZero() {
			st.met.runningDur.Record(j.finished.Sub(j.started))
		}
		if err != nil {
			st.met.failed.Inc()
		} else {
			st.met.done.Inc()
		}
	}
	if err != nil {
		j.state = JobFailed
		j.err = err
	} else {
		j.state = JobDone
		j.result = resp
	}
	close(j.done)
}

// get returns the job by id, nil if unknown or TTL-expired. Polling is
// the hottest store operation (every awaiting client, every interval),
// so it checks only the requested job's expiry instead of sweeping the
// whole store — full sweeps happen on submit and list, where they are
// amortized against rarer, heavier work.
func (st *jobStore) get(id string) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil {
		return nil
	}
	if (j.state == JobDone || j.state == JobFailed) && j.finished.Before(st.now().Add(-st.ttl)) {
		// Drop the payload now — a poll-only workload would otherwise
		// keep expired results resident until the next submit or list.
		// The stale id in st.order is reaped by the next full sweep.
		delete(st.jobs, id)
		return nil
	}
	return j
}

// list returns all retained jobs in submission order.
func (st *jobStore) list() []*job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictExpiredLocked()
	out := make([]*job, 0, len(st.order))
	for _, id := range st.order {
		out = append(out, st.jobs[id])
	}
	return out
}

// evictExpiredLocked drops terminal jobs whose TTL elapsed, then — if a
// flood of instantly-completing submissions outran the TTL — the oldest
// terminal jobs beyond maxRetainedJobs. Queued and running jobs are
// never evicted. Called under st.mu on every store access, so no
// janitor goroutine is needed.
func (st *jobStore) evictExpiredLocked() {
	cutoff := st.now().Add(-st.ttl)
	kept := st.order[:0]
	for _, id := range st.order {
		j := st.jobs[id]
		if j == nil { // already evicted by a poll (see get)
			continue
		}
		if (j.state == JobDone || j.state == JobFailed) && j.finished.Before(cutoff) {
			delete(st.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	st.order = kept
	if over := len(st.order) - maxRetainedJobs; over > 0 {
		kept = st.order[:0]
		for _, id := range st.order {
			j := st.jobs[id]
			if over > 0 && (j.state == JobDone || j.state == JobFailed) {
				delete(st.jobs, id)
				over--
				continue
			}
			kept = append(kept, id)
		}
		st.order = kept
	}
}

// cacheGet returns the cached Apriori result for key, if present.
func (st *jobStore) cacheGet(key mineKey) *cacheEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cache[key]
}

// cachePut stores a computed result and returns the canonical entry
// for the key: when two workers race to compute the same key, the first
// store wins and the loser adopts it, so every result reported for one
// (generation, version, params) is identical. A put from a superseded
// generation (the computation started before a state restore) is
// dropped without storing — its result is valid for the counter it was
// computed on, but that counter is gone and the entry could never be
// served. Every stored entry therefore carries the current generation,
// and the prune below only needs to drop older snapshot versions (the
// counter only moves forward, so they can never be requested again).
func (st *jobStore) cachePut(key mineKey, e *cacheEntry) *cacheEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	if existing := st.cache[key]; existing != nil {
		return existing
	}
	if key.gen != st.gen.Load() {
		return e
	}
	for k := range st.cache {
		if k.version < key.version {
			delete(st.cache, k)
		}
	}
	// Same-version entries (distinct params on an unchanged collection)
	// survive the prune above, so enforce the cap by dropping arbitrary
	// entries — the cache is a recomputation saver, not a correctness
	// structure, and any evicted key is simply recomputed on next miss.
	for k := range st.cache {
		if len(st.cache) < maxCacheEntries {
			break
		}
		delete(st.cache, k)
	}
	st.cache[key] = e
	return e
}

// invalidateCache drops every entry and advances the generation,
// returning the new one — required when the counter object itself is
// replaced (state restore), which resets the version line. Callers
// publish the new counter together with the returned generation only
// AFTER this completes.
func (st *jobStore) invalidateCache() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cache = make(map[mineKey]*cacheEntry)
	return st.gen.Add(1)
}

// snapshot renders the job's wire form under the store lock.
func (st *jobStore) snapshot(j *job, includeResult bool) JobResponse {
	st.mu.Lock()
	defer st.mu.Unlock()
	resp := JobResponse{
		ID:        j.id,
		State:     j.state,
		Params:    j.params,
		CreatedAt: j.created,
	}
	switch j.state {
	case JobDone:
		resp.SnapshotVersion = j.version
		resp.Cached = j.cached
		fin := j.finished
		resp.FinishedAt = &fin
		if includeResult {
			resp.Result = j.result
		}
	case JobFailed:
		fin := j.finished
		resp.FinishedAt = &fin
		resp.Error = j.err.Error()
	}
	return resp
}

// await blocks until the job reaches a terminal state or ctx ends.
func (j *job) await(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
