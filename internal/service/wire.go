package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"sync"

	"repro/internal/mining"
)

// Binary wire form for POST /v1/submit-batch, negotiated via
// Content-Type. JSON (the default) names categories by string, so one
// submitted item costs tens of bytes and a map allocation to decode;
// the binary form ships the already-perturbed records as varint
// (attr, value) index pairs — the exact shape the counter ingests — so
// decoding is a single linear scan into pooled scratch that allocates
// O(1) per batch regardless of batch size.
//
// Layout (all integers unsigned varints):
//
//	magic "FRB1"
//	record count
//	per record: item count, then per item: attr index, value index
//
// Indexes are positions in the published schema (attribute order,
// category order), which both sides derive from the same contract. The
// submission must carry the scheme's compatibility fingerprint in the
// X-Frapp-Fingerprint header; a mismatch is a 400 before any byte of
// the body is parsed, so records perturbed under a stale or foreign
// contract can never be counted.
const (
	// BatchContentTypeJSON is the default submit-batch wire form: a JSON
	// array of per-scheme record objects.
	BatchContentTypeJSON = "application/json"
	// BatchContentTypeBinary selects the binary submit-batch wire form.
	BatchContentTypeBinary = "application/x-frapp-batch"
	// FingerprintHeader carries the client's scheme compatibility
	// fingerprint on binary submissions.
	FingerprintHeader = "X-Frapp-Fingerprint"
	// batchMagic leads every binary batch so a misrouted JSON body (or
	// truncated proxy garbage) fails fast with a clear error.
	batchMagic = "FRB1"
)

// maxWireIndex bounds decoded attr/value indexes: far above any legal
// schema position, low enough that int conversion can never wrap.
const maxWireIndex = math.MaxInt32

// mediaType extracts the bare media type from a Content-Type header,
// tolerating parameters and case per RFC 9110. Unparseable or absent
// values return "" (the caller treats that as the JSON default).
func mediaType(ct string) string {
	if ct == "" {
		return ""
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return ""
	}
	return mt
}

// appendBinaryBatch encodes records in the binary wire form, appending
// to dst. The client-side encoder half of the codec.
func appendBinaryBatch(dst []byte, records [][]mining.Item) []byte {
	dst = append(dst, batchMagic...)
	dst = binary.AppendUvarint(dst, uint64(len(records)))
	for _, items := range records {
		dst = binary.AppendUvarint(dst, uint64(len(items)))
		for _, it := range items {
			dst = binary.AppendUvarint(dst, uint64(it.Attr))
			dst = binary.AppendUvarint(dst, uint64(it.Value))
		}
	}
	return dst
}

// batchScratch is the pooled decode state for one binary batch: the
// body buffer, one flat item arena, and the per-record views into it.
// All four slices retain capacity across uses, so a steady stream of
// similar-size batches decodes with zero per-batch heap growth.
type batchScratch struct {
	body    []byte
	items   []mining.Item
	lens    []int
	records [][]mining.Item
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// release returns the scratch to the pool. The caller must not hold on
// to the record views after release — the counter has already copied
// the batch into its own prepared form by then.
func (b *batchScratch) release() { batchPool.Put(b) }

// readBody reads r to EOF into b.body, reusing its capacity.
func (b *batchScratch) readBody(r io.Reader) error {
	buf := b.body[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			b.body = buf
			return nil
		}
		if err != nil {
			b.body = buf
			return err
		}
	}
}

// errWire marks a malformed binary batch. Wraps ErrService so the
// handler's error mapping (400) applies unchanged.
var errWire = fmt.Errorf("%w: bad binary batch", ErrService)

// uvarint decodes one varint at off, rejecting truncation and values
// above maxWireIndex (indexes and counts alike — a batch can never
// legitimately carry more records than it has bytes).
func (b *batchScratch) uvarint(off int) (int, int, error) {
	v, n := binary.Uvarint(b.body[off:])
	if n <= 0 || v > maxWireIndex {
		return 0, 0, fmt.Errorf("%w: bad varint at offset %d", errWire, off)
	}
	return int(v), off + n, nil
}

// decode reads and parses one binary batch from r into the scratch,
// returning per-record item views into the flat arena. The views stay
// valid until release. Structural validation only — attribute and
// value ranges are the counter's prepare step — but every count is
// bounded by the remaining body size before any allocation sized by
// it, so a hostile header cannot force a huge allocation.
func (b *batchScratch) decode(r io.Reader) ([][]mining.Item, error) {
	if err := b.readBody(r); err != nil {
		return nil, err
	}
	body := b.body
	if len(body) < len(batchMagic) || string(body[:len(batchMagic)]) != batchMagic {
		return nil, fmt.Errorf("%w: missing %q magic", errWire, batchMagic)
	}
	count, off, err := b.uvarint(len(batchMagic))
	if err != nil {
		return nil, err
	}
	// Each record costs at least one byte (its item count), each item at
	// least two (attr + value), so counts are bounded by bytes remaining.
	if count > len(body)-off {
		return nil, fmt.Errorf("%w: %d records in a %d-byte body", errWire, count, len(body))
	}
	b.items = b.items[:0]
	b.lens = b.lens[:0]
	for i := 0; i < count; i++ {
		var m int
		if m, off, err = b.uvarint(off); err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		if m > (len(body)-off)/2 {
			return nil, fmt.Errorf("%w: record %d claims %d items with %d bytes left", errWire, i, m, len(body)-off)
		}
		for j := 0; j < m; j++ {
			var attr, value int
			if attr, off, err = b.uvarint(off); err != nil {
				return nil, fmt.Errorf("record %d item %d: %w", i, j, err)
			}
			if value, off, err = b.uvarint(off); err != nil {
				return nil, fmt.Errorf("record %d item %d: %w", i, j, err)
			}
			b.items = append(b.items, mining.Item{Attr: attr, Value: value})
		}
		b.lens = append(b.lens, m)
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d records", errWire, len(body)-off, count)
	}
	// Build the record views only after the arena stopped growing —
	// subslices taken mid-append would dangle after a realloc.
	b.records = b.records[:0]
	lo := 0
	for _, n := range b.lens {
		b.records = append(b.records, b.items[lo:lo+n:lo+n])
		lo += n
	}
	return b.records, nil
}

// httpBodyError maps a request-body read/decode failure: 413 when the
// MaxBytesReader limit tripped, 400 otherwise.
func httpBodyError(w http.ResponseWriter, err error, what string) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%w: request body exceeds the %d-byte limit", ErrService, mbe.Limit))
		return
	}
	if errors.Is(err, ErrService) {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	httpError(w, http.StatusBadRequest, fmt.Errorf("%w: %s: %v", ErrService, what, err))
}
