package service

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func TestServerStateRoundTrip(t *testing.T) {
	srv, ts := startServer(t)
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(60))
	var recs []dataset.Record
	for i := 0; i < 400; i++ {
		recs = append(recs, dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)})
	}
	if err := client.SubmitBatch(recs, rng); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh server restores the state and mines identically.
	restored, err := NewServer(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.N() != srv.N() {
		t.Fatalf("restored N = %d, want %d", restored.N(), srv.N())
	}
	rts := httptest.NewServer(restored.Handler())
	defer rts.Close()
	rclient, err := NewClient(rts.URL, WithHTTPClient(rts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	a, err := client.Mine(0.1, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rclient.Mine(0.1, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Itemsets) != len(b.Itemsets) {
		t.Fatalf("mined %d vs restored %d itemsets", len(a.Itemsets), len(b.Itemsets))
	}
}

func TestPersistStateFileAndRestore(t *testing.T) {
	srv, ts := startServer(t)
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	if err := client.Submit(dataset.Record{0, 0, 0}, rng); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := srv.PersistStateFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	restored, err := NewServerWithState(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != 1 {
		t.Fatalf("restored N = %d", restored.N())
	}
	// No leftover temp files.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("state dir has %d entries, want 1", len(entries))
	}
}

func TestNewServerWithStateMissingFileStartsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.gob")
	srv, err := NewServerWithState(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, path)
	if err != nil {
		t.Fatal(err)
	}
	if srv.N() != 0 {
		t.Fatalf("N = %d", srv.N())
	}
}

func TestNewServerWithStateRejectsWrongSchema(t *testing.T) {
	// Save under the census schema, restore under the small one.
	censusSrv, err := NewServer(dataset.CensusSchema(), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := censusSrv.PersistStateFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServerWithState(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, path); err == nil {
		t.Fatal("cross-schema state accepted")
	}
}
