package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/mining"
	"repro/internal/query"
)

// The interactive query endpoint: POST /v1/query answers a batch of
// filter-count queries (attr=value conjunctions) with reconstructed
// estimates and 95% confidence intervals, straight from the live
// sharded counter — never a scan over stored records (the server does
// not store records at all). Per-batch cost is scheme-dependent: gamma
// answers in O(#filters) merged-shard histogram lookups; the boolean
// schemes sweep their sparse joint histogram of DISTINCT perturbed rows
// (their minimal sufficient state), so a batch costs
// O(distinct rows × #filters) — still record-free and bounded by the
// boolean domain, but not size-independent.
//
// Results follow the same snapshot-version discipline as mining jobs:
// every response reports the (counter generation, snapshot version)
// pair it is exact for, the version read BEFORE the counter sweep, so a
// client that still observes the same pair in /v1/stats may keep
// reusing the response. The generation matters because a state restore
// restarts the version line; the version alone could alias two
// different collections across a restore. Queries are cheap enough
// (microseconds against the materialized histograms) that no
// server-side result cache is needed — the stamps exist so CLIENTS can
// cache.

// defaultQueryLimit caps the number of filters in one batch.
const defaultQueryLimit = 1024

// QueryFilter is one conjunction of attribute=category conditions on
// the wire: an object mapping attribute names to category names, in the
// same vocabulary as /v1/schema. The empty object matches every record.
type QueryFilter map[string]string

// QueryRequest is the body of POST /v1/query. Filters are kept raw so
// the handler can reject duplicate attribute keys, which encoding/json
// would silently collapse.
type QueryRequest struct {
	Filters []json.RawMessage `json:"filters"`
	// Window restricts the estimates to the records of the last Window
	// of wall-clock time (a Go duration string, e.g. "24h"), rounded up
	// to whole ring buckets. Only valid on a windowed collection; empty
	// means the full collection.
	Window string `json:"window,omitempty"`
}

// QueryEstimate is one reconstructed count estimate on the wire.
type QueryEstimate struct {
	// Count is the point estimate of the number of ORIGINAL records
	// matching the filter; it may be negative or exceed N under heavy
	// noise at small collection sizes.
	Count float64 `json:"count"`
	// StdErr is the estimator's standard error; Lo and Hi bound the 95%
	// confidence interval (normal approximation, unclamped).
	StdErr float64 `json:"stderr"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	// N is the number of perturbed records the estimate is based on —
	// identical for every estimate of one response (single sweep).
	N int `json:"n"`
}

// QueryResponse answers one batch of filters.
type QueryResponse struct {
	// Records is the record count every estimate in this response is
	// based on.
	Records int `json:"records"`
	// SnapshotVersion is the counter version this response is exact
	// for, read before the counter sweep: Records >= SnapshotVersion,
	// and the response stays exact as long as /v1/stats still reports
	// the same (counter_generation, snapshot_version) pair.
	SnapshotVersion uint64 `json:"snapshot_version"`
	// CounterGeneration counts state restores. A restore RESTARTS the
	// version line (at the restored record count), so a version match
	// alone could pair this response with a different post-restore
	// collection; the generation disambiguates, exactly as it does for
	// the server's internal mining-result cache.
	CounterGeneration uint64 `json:"counter_generation"`
	// VersionVector, present only on a federation coordinator, maps peer
	// URL → replication position: exactly which per-site states the
	// merged counter these estimates were answered from reflects.
	VersionVector map[string]uint64 `json:"version_vector,omitempty"`
	// Window echoes the request's window restriction on a windowed
	// collection: Records and every estimate cover only the newest
	// ceil(window/bucket) ring buckets. Absent on unwindowed queries.
	Window string `json:"window,omitempty"`
	// Estimates are in filter order.
	Estimates []QueryEstimate `json:"estimates"`
}

// WithQueryLimit caps how many filters one /v1/query batch may carry.
// Values <= 0 (and the default) mean 1024.
func WithQueryLimit(n int) Option {
	return func(c *serverConfig) { c.queryLimit = n }
}

// QueryLimit returns the per-batch filter cap.
func (s *Server) QueryLimit() int { return s.queryLimit }

// decodeFilter parses one wire filter object into a canonical itemset
// through the duplicate-rejecting attribute walk (walkAttrObject): a
// filter that names an attribute twice is a contradiction the client
// should hear about, not a silently rewritten query.
func (s *Server) decodeFilter(raw json.RawMessage) (mining.Itemset, error) {
	var items []mining.Item
	err := s.walkAttrObject(raw, "filter", func(j int, name string, dec *json.Decoder) error {
		valTok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: bad filter JSON: %v", ErrService, err)
		}
		cat, ok := valTok.(string)
		if !ok {
			return fmt.Errorf("%w: attribute %q condition must be a category name", ErrService, name)
		}
		v := s.schema.Attrs[j].CategoryIndex(cat)
		if v < 0 {
			return fmt.Errorf("%w: unknown category %q for attribute %q", ErrService, cat, name)
		}
		items = append(items, mining.Item{Attr: j, Value: v})
		return nil
	})
	if err != nil {
		return nil, err
	}
	set, err := mining.NewItemset(items...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrService, err)
	}
	return set, nil
}

// attrIndex resolves an attribute name to its schema position, -1 if
// unknown. Linear scan — schemas have a handful of attributes.
func (s *Server) attrIndex(name string) int {
	for j, a := range s.schema.Attrs {
		if a.Name == name {
			return j
		}
	}
	return -1
}

// handleQuery answers a batch of filter-count queries from the live
// counter. The handler never touches stored records — the server keeps
// none — and never snapshots: the counter sweep inside CountAll merges
// only the histograms the batch needs, one shard lock at a time.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var qr QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&qr); err != nil && !errors.Is(err, io.EOF) {
		httpBodyError(w, err, "bad JSON")
		return
	}
	if len(qr.Filters) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("%w: empty filter batch", ErrService))
		return
	}
	if len(qr.Filters) > s.queryLimit {
		httpError(w, http.StatusBadRequest, fmt.Errorf("%w: batch of %d filters exceeds limit %d", ErrService, len(qr.Filters), s.queryLimit))
		return
	}
	filters := make([]mining.Itemset, len(qr.Filters))
	for i, raw := range qr.Filters {
		f, err := s.decodeFilter(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("filter %d: %w", i, err))
			return
		}
		filters[i] = f
	}
	// One load yields a consistent (counter, generation) pair even if a
	// state restore lands mid-request.
	ref := s.counter.Load()
	if qr.Window != "" {
		s.handleWindowedQuery(w, ref, filters, qr.Window)
		return
	}
	counter := ref.counter
	if counter.N() == 0 {
		httpError(w, http.StatusConflict, errNoSubmissions)
		return
	}
	// The version is read BEFORE the sweep (the SnapshotVersioned
	// convention): every record visible at this version is fully inside
	// some shard and therefore inside the sweep, so Records >= version
	// and the response is exact for it.
	version := counter.Version()
	// The live engine answers through the counter's own scheme
	// estimator, so this one path serves gamma, MASK, and cut-and-paste
	// collections alike.
	eng, err := query.NewLiveCounterEngine(counter)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	ests, err := eng.CountAll(filters)
	if err != nil {
		// Filters were validated above and the collection is non-empty
		// (and can only grow), so any estimator error is a server bug.
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := QueryResponse{
		Records:           ests[0].N,
		SnapshotVersion:   version,
		CounterGeneration: ref.gen,
		VersionVector:     ref.vector,
		Estimates:         make([]QueryEstimate, len(ests)),
	}
	for i, e := range ests {
		resp.Estimates[i] = QueryEstimate{Count: e.Count, StdErr: e.StdErr, Lo: e.Lo, Hi: e.Hi, N: e.N}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWindowedQuery answers a filter batch restricted to the newest
// ceil(window/bucket) ring buckets of a windowed collection. The
// counter returns the version together with the estimates, read under
// the same lock as the sweep: windowed content is non-monotonic (a ring
// rotation REMOVES records), so the unwindowed path's "version read
// before the sweep stays valid for strictly newer content" argument
// does not apply and the stamp must be exact.
func (s *Server) handleWindowedQuery(w http.ResponseWriter, ref *counterRef, filters []mining.Itemset, windowStr string) {
	window, err := time.ParseDuration(windowStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("%w: bad window %q: %v", ErrService, windowStr, err))
		return
	}
	if window <= 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("%w: window %q must be positive", ErrService, windowStr))
		return
	}
	wv, ok := ref.counter.(mining.WindowView)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Errorf("%w: collection is not windowed; query without the window field", ErrService))
		return
	}
	ests, n, version, err := wv.EstimatesWindow(filters, window)
	if err != nil {
		// Filters were validated by the caller, so estimator errors are
		// server bugs, as on the unwindowed path.
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if n == 0 {
		httpError(w, http.StatusConflict, fmt.Errorf("%w (no records in the last %s)", errNoSubmissions, windowStr))
		return
	}
	resp := QueryResponse{
		Records:           n,
		SnapshotVersion:   version,
		CounterGeneration: ref.gen,
		VersionVector:     ref.vector,
		Window:            windowStr,
		Estimates:         make([]QueryEstimate, len(ests)),
	}
	// Intervals use the same 95% normal quantile the query engine's own
	// estimates carry, so windowed and unwindowed responses are directly
	// comparable.
	for i, pe := range ests {
		resp.Estimates[i] = QueryEstimate{
			Count:  pe.Count,
			StdErr: pe.StdErr,
			Lo:     pe.Count - query.Z95*pe.StdErr,
			Hi:     pe.Count + query.Z95*pe.StdErr,
			N:      n,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
