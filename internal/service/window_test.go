package service

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/mining"
	"repro/internal/store"
)

// Sliding-window surface of the collection server, over HTTP: full-ring
// windowed reads must equal unwindowed ones (the mining-layer ring-union
// property lifted through the wire format), rotation must expire records
// from query and mine results, and every durability/federation surface
// must refuse a windowed collection.

// svcClock is a mutex-guarded fake clock for driving ring rotation.
type svcClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *svcClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *svcClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// startWindowedServer builds a windowed server on a deterministic clock
// (installed before any traffic) plus an HTTP front.
func startWindowedServer(t *testing.T, buckets int, bucket time.Duration, opts ...Option) (*Server, *Client, *svcClock) {
	t.Helper()
	srv, ts := startServer(t, append([]Option{WithWindow(buckets, bucket)}, opts...)...)
	clock := &svcClock{t: time.Unix(1700000000, 0)}
	srv.ctr().(*mining.WindowedCounter).SetNowFunc(clock.Now)
	return srv, wireClient(t, ts), clock
}

// windowProbeFilters is a spread of wire filters over serviceSchema:
// the match-all filter, every single-attribute condition, and one pair.
func windowProbeFilters(t *testing.T, srv *Server) []QueryFilter {
	t.Helper()
	schema := srv.PublishedSchema()
	filters := []QueryFilter{{}}
	for _, a := range schema.Attrs {
		for _, cat := range a.Categories {
			filters = append(filters, QueryFilter{a.Name: cat})
		}
	}
	filters = append(filters, QueryFilter{
		schema.Attrs[0].Name: schema.Attrs[0].Categories[1],
		schema.Attrs[2].Name: schema.Attrs[2].Categories[3],
	})
	return filters
}

// submitSeeded perturbs and submits n deterministic records through the
// client. Identical (n, seed) pairs submit bit-identical perturbed
// batches, so two servers fed the same pair hold the same counts.
func submitSeeded(t *testing.T, c *Client, n int, seed int64) {
	t.Helper()
	recs := wireRecords(c.Schema(), n, seed)
	if err := c.SubmitBatch(recs, rand.New(rand.NewSource(seed*7+1))); err != nil {
		t.Fatal(err)
	}
}

func assertQueriesMatch(t *testing.T, got, want *QueryResponse, context string) {
	t.Helper()
	if got.Records != want.Records {
		t.Fatalf("%s: records %d != %d", context, got.Records, want.Records)
	}
	if len(got.Estimates) != len(want.Estimates) {
		t.Fatalf("%s: %d estimates != %d", context, len(got.Estimates), len(want.Estimates))
	}
	for i := range got.Estimates {
		g, w := got.Estimates[i], want.Estimates[i]
		for _, d := range []struct {
			name      string
			got, want float64
		}{
			{"count", g.Count, w.Count},
			{"stderr", g.StdErr, w.StdErr},
			{"lo", g.Lo, w.Lo},
			{"hi", g.Hi, w.Hi},
		} {
			if math.Abs(d.got-d.want) > 1e-9 {
				t.Errorf("%s: filter %d %s = %v, want %v", context, i, d.name, d.got, d.want)
			}
		}
		if g.N != w.N {
			t.Errorf("%s: filter %d n = %d, want %d", context, i, g.N, w.N)
		}
	}
}

// TestWindowedQueryFullRingMatchesUnwindowed: for every scheme, a
// windowed query spanning the whole ring must answer byte-for-byte the
// same estimates as the unwindowed query on the same server — the
// HTTP-level form of the ring-union equivalence (windows are a
// restriction, never a different estimator).
func TestWindowedQueryFullRingMatchesUnwindowed(t *testing.T) {
	for _, scheme := range mining.SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			srv, client, _ := startWindowedServer(t, 4, time.Minute,
				WithScheme(scheme), WithShards(3))
			submitSeeded(t, client, 240, 404)
			filters := windowProbeFilters(t, srv)

			plain, err := client.QueryAll(filters)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Window != "" {
				t.Errorf("unwindowed response echoes window %q", plain.Window)
			}
			// 4m covers the exact ring; 1h clamps to it. Both must match.
			for _, window := range []string{"4m", "1h"} {
				windowed, err := client.QueryWindow(filters, window)
				if err != nil {
					t.Fatal(err)
				}
				if windowed.Window != window {
					t.Errorf("window echo = %q, want %q", windowed.Window, window)
				}
				assertQueriesMatch(t, windowed, plain, "window "+window)
			}
		})
	}
}

// TestWindowedQueryRotationOverHTTP: after the clock rotates old records
// out of the selected window, a windowed query must equal the query a
// fresh server holding only the surviving submissions answers — and once
// the ring fully expires them, the unwindowed view must shrink too.
func TestWindowedQueryRotationOverHTTP(t *testing.T) {
	srv, client, clock := startWindowedServer(t, 4, time.Minute, WithShards(3))
	_, refTS := startServer(t, WithShards(3))
	refClient := wireClient(t, refTS)

	submitSeeded(t, client, 150, 11) // old cohort, head bucket 0
	clock.Advance(2 * time.Minute)   // old cohort now 2 buckets back
	submitSeeded(t, client, 90, 22)  // young cohort, head bucket 2
	// The reference server holds ONLY the young cohort, identically
	// perturbed (same records, same client rng seed).
	submitSeeded(t, refClient, 90, 22)

	filters := windowProbeFilters(t, srv)
	ref, err := refClient.QueryAll(filters)
	if err != nil {
		t.Fatal(err)
	}
	// A 1-bucket window selects exactly the young cohort. 90s rounds up
	// to 2 buckets, whose union is still only the young cohort (the
	// bucket between the cohorts is empty).
	for _, window := range []string{"1m", "90s"} {
		got, err := client.QueryWindow(filters, window)
		if err != nil {
			t.Fatal(err)
		}
		assertQueriesMatch(t, got, ref, "window "+window)
	}
	// The full ring still holds both cohorts.
	full, err := client.QueryAll(filters)
	if err != nil {
		t.Fatal(err)
	}
	if full.Records != 240 {
		t.Fatalf("full-ring records = %d, want 240", full.Records)
	}

	// Advance until the old cohort falls out of retention entirely (age
	// 5m > 4 buckets); the young cohort (age 3m) survives. Now even the
	// UNWINDOWED view must equal the reference server.
	clock.Advance(3 * time.Minute)
	expired, err := client.QueryAll(filters)
	if err != nil {
		t.Fatal(err)
	}
	assertQueriesMatch(t, expired, ref, "post-expiry full view")

	// And once everything expires, the collection reports empty (409).
	clock.Advance(5 * time.Minute)
	if _, err := client.QueryAll(filters); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("query on fully expired ring: %v, want 409", err)
	}
	if n := srv.N(); n != 0 {
		t.Fatalf("N after full expiry = %d, want 0", n)
	}
}

// TestWindowedMineJobs: a mining job with a full-ring window must return
// the same model as the unwindowed mine; spelling the same window
// differently ("240s" vs "4m") must hit the result cache; a window on an
// unwindowed collection must fail the job with a client error.
func TestWindowedMineJobs(t *testing.T) {
	srv, client, clock := startWindowedServer(t, 4, time.Minute, WithShards(3))
	submitSeeded(t, client, 300, 1234)
	ctx := context.Background()

	plain, err := client.Mine(0.05, 0.3, 50)
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := client.MineAsync(ctx, MineParams{MinSupport: 0.05, MinConf: 0.3, Limit: 50, Window: "4m"})
	if err != nil {
		t.Fatal(err)
	}
	if windowed.Window != "4m" {
		t.Errorf("mine window echo = %q, want 4m", windowed.Window)
	}
	if plain.Window != "" {
		t.Errorf("unwindowed mine echoes window %q", plain.Window)
	}
	if windowed.Records != plain.Records {
		t.Fatalf("windowed mine records = %d, want %d", windowed.Records, plain.Records)
	}
	if len(windowed.Itemsets) != len(plain.Itemsets) {
		t.Fatalf("windowed mine found %d itemsets, unwindowed %d", len(windowed.Itemsets), len(plain.Itemsets))
	}
	for i := range windowed.Itemsets {
		g, w := windowed.Itemsets[i], plain.Itemsets[i]
		if math.Abs(g.Support-w.Support) > 1e-9 {
			t.Errorf("itemset %d support %v != %v", i, g.Support, w.Support)
		}
		if len(g.Items) != len(w.Items) {
			t.Errorf("itemset %d arity %d != %d", i, len(g.Items), len(w.Items))
		}
	}

	// Same window, different spelling: the cache keys on the parsed
	// duration, so this must be a hit, not a second Apriori run.
	runs := srv.AprioriRuns()
	jr, err := client.SubmitMineJob(MineParams{MinSupport: 0.05, MinConf: 0.3, Limit: 50, Window: "240s"})
	if err != nil {
		t.Fatal(err)
	}
	done, err := client.AwaitMineJob(ctx, jr.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !done.Cached {
		t.Error("mine with re-spelled window was not served from cache")
	}
	if srv.AprioriRuns() != runs {
		t.Errorf("re-spelled window ran Apriori again (%d -> %d runs)", runs, srv.AprioriRuns())
	}

	// A sub-ring window after expiring the first cohort mines only the
	// survivors: push a second cohort, expire the first, and the model
	// record count must drop to the survivor count.
	clock.Advance(3 * time.Minute)
	submitSeeded(t, client, 120, 777)
	sub, err := client.MineAsync(ctx, MineParams{MinSupport: 0.05, MinConf: 0.3, Limit: 50, Window: "1m"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Records != 120 {
		t.Fatalf("1m-window mine records = %d, want 120 (survivors only)", sub.Records)
	}

	// Window on an unwindowed collection: the job must fail cleanly.
	_, plainTS := startServer(t, WithShards(2))
	plainClient := wireClient(t, plainTS)
	submitSeeded(t, plainClient, 50, 5)
	if _, err := plainClient.MineAsync(ctx, MineParams{MinSupport: 0.05, Window: "1m"}); err == nil ||
		!strings.Contains(err.Error(), "not windowed") {
		t.Fatalf("windowed mine on plain collection: %v, want 'not windowed'", err)
	}
	// Malformed window: rejected at submission (validate), not at run.
	if _, err := plainClient.SubmitMineJob(MineParams{MinSupport: 0.05, Window: "soon"}); err == nil {
		t.Fatal("malformed window accepted at job submission")
	}
}

// TestWindowedQueryRejections: the window query parameter is validated
// like any client input — bad duration, non-positive duration, and a
// window on an unwindowed collection are all 400s, and an empty window
// is the usual 409, never an estimator error.
func TestWindowedQueryRejections(t *testing.T) {
	_, plainTS := startServer(t, WithShards(2))
	plainClient := wireClient(t, plainTS)
	submitSeeded(t, plainClient, 30, 9)
	filters := []QueryFilter{{}}

	for _, tc := range []struct {
		client *Client
		window string
	}{
		{plainClient, "1m"},   // not a windowed collection
		{plainClient, "argh"}, // unparseable duration
		{plainClient, "-5m"},  // non-positive duration
	} {
		if _, err := tc.client.QueryWindow(filters, tc.window); err == nil ||
			!strings.Contains(err.Error(), "400") {
			t.Errorf("window %q: %v, want 400", tc.window, err)
		}
	}

	_, winClient, _ := startWindowedServer(t, 2, time.Minute, WithShards(2))
	if _, err := winClient.QueryWindow(filters, "1m"); err == nil ||
		!strings.Contains(err.Error(), "409") {
		t.Errorf("window query on empty collection: %v, want 409", err)
	}
}

// TestWindowedDurabilityGates: every surface that would persist,
// restore, replicate, or federate a windowed collection must refuse —
// wall-clock expiry cannot be replayed or replicated.
func TestWindowedDurabilityGates(t *testing.T) {
	srv, client, _ := startWindowedServer(t, 2, time.Minute, WithShards(2))
	submitSeeded(t, client, 40, 3)

	if err := srv.SaveState(&failWriter{}); err == nil {
		t.Error("SaveState succeeded on a windowed server")
	}
	if err := srv.LoadState(strings.NewReader("x")); !errors.Is(err, ErrService) {
		t.Errorf("LoadState = %v, want windowed refusal", err)
	}
	other, err := mining.NewShardedCounter(srv.CounterScheme(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ReplaceCounter(other, nil); !errors.Is(err, ErrService) {
		t.Errorf("ReplaceCounter = %v, want windowed refusal", err)
	}
	coord, err := federation.NewCoordinator(srv.CounterScheme(), []string{"http://127.0.0.1:1"},
		func(mining.LiveCounter, map[string]uint64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := srv.EnableFederation(coord); !errors.Is(err, ErrService) {
		t.Errorf("EnableFederation = %v, want windowed refusal", err)
	}
	if _, err := client.Replicate(0, 0); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("replicate = %v, want 409", err)
	}
	// And the windowed+store combination is rejected at construction.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := NewServer(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50},
		WithWindow(2, time.Minute), WithStore(st)); err == nil {
		t.Error("windowed config validated with a store attached")
	}
}

// failWriter fails every write — SaveState on a windowed server must
// refuse before writing anything at all, so even this writer works.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("write reached a windowed save") }
