package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/telemetry"
)

// sentinel is a marker that must NEVER appear in telemetry output. The
// privacy test builds a schema whose every attribute and category name
// carries it, drives the full API, and then greps the metrics
// exposition and the access log for it.
const sentinel = "XSECRETX"

func sentinelSchema(tb testing.TB) *dataset.Schema {
	tb.Helper()
	s, err := dataset.NewSchema(sentinel+"schema", []dataset.Attribute{
		{Name: sentinel + "attrA", Categories: []string{sentinel + "a0", sentinel + "a1", sentinel + "a2"}},
		{Name: sentinel + "attrB", Categories: []string{sentinel + "b0", sentinel + "b1"}},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// telemetryDo runs one request through the handler and returns the
// recorder — header map included so callers can also assert negatives.
func telemetryDo(t *testing.T, h http.Handler, method, target, contentType string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestTelemetryNeverLeaksValues drives sentinel-named attributes and
// categories through every endpoint — valid and invalid requests, JSON
// and binary wire forms, mining jobs, queries — then asserts the
// sentinel is unreachable through the metrics exposition, the declared
// label vocabulary, and the access log. This is the FRAPP privacy
// contract applied to the ops plane: the miner-side telemetry may
// describe operations, never data.
func TestTelemetryNeverLeaksValues(t *testing.T) {
	reg := telemetry.NewRegistry()
	var logBuf bytes.Buffer
	logger := telemetry.NewLogger(&logBuf, telemetry.LevelDebug)
	schema := sentinelSchema(t)
	srv, err := NewServer(schema, core.PrivacySpec{Rho1: 0.05, Rho2: 0.50},
		WithShards(2), WithTelemetry(reg), WithAccessLog(logger),
		WithCollectionLabel("tenant-a"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()

	attrA, attrB := schema.Attrs[0].Name, schema.Attrs[1].Name
	rec := func(a, b int) []byte {
		j, _ := json.Marshal(map[string]string{
			attrA: schema.Attrs[0].Categories[a],
			attrB: schema.Attrs[1].Categories[b],
		})
		return j
	}
	// Valid traffic across every wire form and endpoint.
	telemetryDo(t, h, "GET", "/v1/schema", "", nil, nil)
	telemetryDo(t, h, "POST", "/v1/submit", "application/json", rec(1, 0), nil)
	batch := []byte("[" + string(rec(0, 1)) + "," + string(rec(2, 0)) + "]")
	telemetryDo(t, h, "POST", "/v1/submit-batch", "application/json", batch, nil)
	bin := appendBinaryBatch(nil, [][]mining.Item{
		{{Attr: 0, Value: 1}, {Attr: 1, Value: 1}},
		{{Attr: 0, Value: 2}, {Attr: 1, Value: 0}},
	})
	telemetryDo(t, h, "POST", "/v1/submit-batch", BatchContentTypeBinary, bin,
		map[string]string{FingerprintHeader: srv.CounterScheme().Fingerprint()})
	query, _ := json.Marshal(map[string]any{
		"filters": []map[string]string{{attrA: schema.Attrs[0].Categories[0]}},
	})
	telemetryDo(t, h, "POST", "/v1/query", "application/json", query, nil)
	telemetryDo(t, h, "GET", "/v1/mine?minsup=0.01", "", nil, nil)
	if w := telemetryDo(t, h, "POST", "/v1/mine-jobs", "application/json", []byte(`{"minsup":0.01}`), nil); w.Code != http.StatusAccepted {
		t.Fatalf("mine-jobs: %d %s", w.Code, w.Body)
	}
	telemetryDo(t, h, "GET", "/v1/mine-jobs", "", nil, nil)
	telemetryDo(t, h, "GET", "/v1/stats", "", nil, nil)
	// Error paths: unknown category, unknown attribute, bad JSON, a job
	// id carrying the sentinel in the URL path, and a failing mine.
	telemetryDo(t, h, "POST", "/v1/submit", "application/json",
		[]byte(`{"`+attrA+`":"`+sentinel+`bogus","`+attrB+`":"`+schema.Attrs[1].Categories[0]+`"}`), nil)
	telemetryDo(t, h, "POST", "/v1/submit", "application/json",
		[]byte(`{"`+sentinel+`nope":"x"}`), nil)
	telemetryDo(t, h, "POST", "/v1/submit", "application/json", []byte(`{broken`), nil)
	telemetryDo(t, h, "GET", "/v1/mine-jobs/"+sentinel+"-id", "", nil, nil)
	telemetryDo(t, h, "GET", "/v1/mine?minsup=99", "", nil, nil)

	// Let asynchronous job completion land before reading instruments.
	deadline := time.Now().Add(2 * time.Second)
	for srv.AprioriRuns() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	var expo bytes.Buffer
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(expo.String(), sentinel) {
		t.Errorf("metrics exposition leaks record vocabulary:\n%s", expo.String())
	}
	if _, err := telemetry.ParseExposition(expo.Bytes()); err != nil {
		t.Errorf("exposition unparseable: %v", err)
	}

	// Name-based vocabulary check: every label key must be in the known
	// set, and every label value must match that key's closed vocabulary.
	// A future metric whose labels step outside this list fails here
	// until it is reviewed and added.
	valuePattern := map[string]*regexp.Regexp{
		"route":      regexp.MustCompile(`^/v1/[a-z-]+(/\{id\})?$`),
		"code":       regexp.MustCompile(`^([1-5]xx|other)$`),
		"wire":       regexp.MustCompile(`^(json|binary|none)$`),
		"shard":      regexp.MustCompile(`^[0-9]+$`),
		"state":      regexp.MustCompile(`^(queued|running|done|failed)$`),
		"collection": regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`),
	}
	sawCollection := false
	reg.EachSeries(func(name, typ string, labels []telemetry.Label) {
		for _, l := range labels {
			pat, ok := valuePattern[l.Key]
			if !ok {
				t.Errorf("metric %s: label key %q is not in the reviewed vocabulary", name, l.Key)
				continue
			}
			if !pat.MatchString(l.Value) {
				t.Errorf("metric %s: label %s=%q outside the closed vocabulary %v", name, l.Key, l.Value, pat)
			}
			if l.Key == "collection" {
				sawCollection = true
				if l.Value != "tenant-a" {
					t.Errorf("metric %s: collection=%q, want the registered name %q", name, l.Value, "tenant-a")
				}
			}
		}
	})
	if !sawCollection {
		t.Error("no metric series carries the collection label despite WithCollectionLabel")
	}

	logs := logBuf.String()
	if strings.Contains(logs, sentinel) {
		t.Errorf("access log leaks record vocabulary:\n%s", logs)
	}
	// Every access line must be valid JSON with only the fixed field set
	// — the log schema counterpart of the label-vocabulary check.
	allowedFields := map[string]bool{
		"ts": true, "level": true, "req": true, "method": true, "route": true,
		"collection": true, "status": true, "bytes": true, "dur": true, "msg": true,
	}
	lines := strings.Split(strings.TrimSpace(logs), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no access log lines emitted")
	}
	for _, line := range lines {
		var fields map[string]any
		if err := json.Unmarshal([]byte(line), &fields); err != nil {
			t.Fatalf("unparseable access line %q: %v", line, err)
		}
		for k := range fields {
			if !allowedFields[k] {
				t.Errorf("access line carries unreviewed field %q: %s", k, line)
			}
		}
	}
}

// TestTelemetryMiddlewareRecords: the RED middleware must count
// requests under (route pattern, status class, wire form), time them,
// and the stats endpoint must report uptime.
func TestTelemetryMiddlewareRecords(t *testing.T) {
	reg := telemetry.NewRegistry()
	schema := wireSchema(t)
	srv, err := NewServer(schema, core.PrivacySpec{Rho1: 0.05, Rho2: 0.50},
		WithShards(2), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()

	telemetryDo(t, h, "GET", "/v1/stats", "", nil, nil)
	telemetryDo(t, h, "POST", "/v1/submit", "application/json",
		[]byte(`{"a":"a1","b":"b0","c":"c2"}`), nil)
	telemetryDo(t, h, "POST", "/v1/submit", "application/json", []byte(`{broken`), nil)
	w := telemetryDo(t, h, "GET", "/v1/stats", "", nil, nil)

	var stats StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", stats.UptimeSeconds)
	}
	if stats.StartTime.IsZero() || time.Since(stats.StartTime) < 0 {
		t.Errorf("start_time = %v, want a past instant", stats.StartTime)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	expo, err := telemetry.ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition unparseable: %v\n%s", err, buf.String())
	}
	for _, want := range []struct {
		labels map[string]string
		min    float64
	}{
		{map[string]string{"route": "/v1/stats", "code": "2xx", "wire": "none"}, 2},
		{map[string]string{"route": "/v1/submit", "code": "2xx", "wire": "json"}, 1},
		{map[string]string{"route": "/v1/submit", "code": "4xx", "wire": "json"}, 1},
	} {
		v, ok := expo.Value("frapp_http_requests_total", want.labels)
		if !ok || v < want.min {
			t.Errorf("frapp_http_requests_total%v = %v,%v want >= %v", want.labels, v, ok, want.min)
		}
	}
	if v, ok := expo.Value("frapp_http_request_duration_seconds_count",
		map[string]string{"route": "/v1/submit"}); !ok || v < 2 {
		t.Errorf("submit duration count = %v,%v want >= 2", v, ok)
	}
	var ingested float64
	for _, s := range expo.Samples {
		if s.Name == "frapp_ingest_records_total" {
			ingested += s.Value
		}
	}
	if ingested < 1 {
		t.Errorf("ingest records summed over shards = %v, want >= 1", ingested)
	}
	if v, ok := expo.Value("frapp_uptime_seconds", nil); !ok || v <= 0 {
		t.Errorf("uptime gauge = %v,%v want > 0", v, ok)
	}
	if missing := expo.CheckFamilies(reg.Families()); len(missing) > 0 {
		t.Errorf("scrape missing declared families: %v", missing)
	}
}

// nullWriter is a reusable ResponseWriter for alloc measurements: the
// header map is allocated once and response bytes are discarded.
type nullWriter struct {
	hdr http.Header
}

func (n *nullWriter) Header() http.Header         { return n.hdr }
func (n *nullWriter) Write(p []byte) (int, error) { return len(p), nil }
func (n *nullWriter) WriteHeader(int)             {}

// TestTelemetryIngestAllocs: enabling telemetry (middleware + ingest
// observer) must add at most one allocation per binary batch over the
// uninstrumented path — the observer and the middleware are designed to
// be allocation-free, so the whole ops plane can stay on by default.
func TestTelemetryIngestAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector bookkeeping allocates; alloc counts are meaningless under -race")
	}
	schema := wireSchema(t)
	recs := wireRecords(schema, 256, 331)
	records := make([][]mining.Item, len(recs))
	for i, rec := range recs {
		items := make([]mining.Item, len(rec))
		for j, v := range rec {
			items[j] = mining.Item{Attr: j, Value: v}
		}
		records[i] = items
	}
	body := appendBinaryBatch(nil, records)

	measure := func(opts ...Option) float64 {
		srv, err := NewServer(schema, core.PrivacySpec{Rho1: 0.05, Rho2: 0.50},
			append([]Option{WithShards(4)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		h := srv.Handler()
		fp := srv.CounterScheme().Fingerprint()
		rd := bytes.NewReader(body)
		req := httptest.NewRequest("POST", "/v1/submit-batch", io.NopCloser(rd))
		req.Header.Set("Content-Type", BatchContentTypeBinary)
		req.Header.Set(FingerprintHeader, fp)
		w := &nullWriter{hdr: make(http.Header)}
		run := func() {
			rd.Reset(body)
			req.Body = io.NopCloser(rd)
			h.ServeHTTP(w, req)
		}
		// Warm the pools (batch scratch, status writers) to steady state.
		for i := 0; i < 4; i++ {
			run()
		}
		return testing.AllocsPerRun(100, run)
	}

	base := measure()
	instrumented := measure(WithTelemetry(telemetry.NewRegistry()))
	t.Logf("allocs/batch: base=%.1f instrumented=%.1f", base, instrumented)
	if instrumented > base+1 {
		t.Errorf("telemetry adds %.1f allocs/batch (base %.1f, instrumented %.1f), want <= 1",
			instrumented-base, base, instrumented)
	}
}
