package service

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/store"
)

// startStoreServer builds a store-backed server over dir with a fast
// flusher, plus its HTTP front.
func startStoreServer(t *testing.T, dir string, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{
		WithStore(st),
		WithWALFlushInterval(5 * time.Millisecond),
		WithShards(2),
	}, opts...)
	srv, err := NewServer(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func submitBatch(t *testing.T, ts *httptest.Server, n int, seed int64) {
	t.Helper()
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var recs []dataset.Record
	for i := 0; i < n; i++ {
		recs = append(recs, dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)})
	}
	if err := client.SubmitBatch(recs, rng); err != nil {
		t.Fatal(err)
	}
}

// TestStoreBackedServerSurvivesCrash: submissions acknowledged over HTTP
// are durable once the background flusher has run — no FlushWAL call, no
// graceful shutdown. The abandoned server stands in for a killed one.
func TestStoreBackedServerSurvivesCrash(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	srv, ts := startStoreServer(t, dir)
	submitBatch(t, ts, 40, 70)

	// Wait out a few flusher ticks, then "crash": no Close, no flush.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st2, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		recovered, err := st2.Recover(srv.CounterScheme(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if recovered != nil && recovered.N() == 40 {
			break
		}
		if time.Now().After(deadline) {
			n := -1
			if recovered != nil {
				n = recovered.N()
			}
			t.Fatalf("flusher never made the records durable (recovered %d/40)", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStoreBackedServerRestartRestores: the graceful path — Close
// flushes the tail — and a successor server over the same directory
// starts with every record and mines from them.
func TestStoreBackedServerRestartRestores(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	srv, ts := startStoreServer(t, dir)
	submitBatch(t, ts, 200, 71)
	if !srv.StoreBacked() {
		t.Fatal("server does not report its store")
	}
	srv.Close()
	ts.Close()

	srv2, ts2 := startStoreServer(t, dir)
	if srv2.N() != 200 {
		t.Fatalf("restarted server has %d records, want 200", srv2.N())
	}
	client, err := NewClient(ts2.URL, WithHTTPClient(ts2.Client()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Mine(0.1, 0, 100); err != nil {
		t.Fatalf("mining over recovered state: %v", err)
	}
}

// TestStoreBackedCheckpointThreshold: crossing -checkpoint-every records
// makes the background flusher compact without any explicit call.
func TestStoreBackedCheckpointThreshold(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	_, ts := startStoreServer(t, dir, WithCheckpointEvery(10))
	submitBatch(t, ts, 50, 72)
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Attach wrote checkpoint-1; a threshold compaction moves past it.
		ckpts, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
		if err != nil {
			t.Fatal(err)
		}
		if len(ckpts) > 0 && filepath.Base(ckpts[len(ckpts)-1]) != "checkpoint-0000000000000001.ckpt" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no threshold checkpoint appeared (have %v)", ckpts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStoreBackedServerGuards: the operations that would swap the
// counter object out from under the store's WAL chain are refused, and
// the store controls (FlushWAL/CheckpointNow) are no-ops without one.
func TestStoreBackedServerGuards(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	srv, ts := startStoreServer(t, dir)
	submitBatch(t, ts, 3, 73)

	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadState(&buf); !errors.Is(err, ErrService) {
		t.Fatalf("LoadState on a store-backed server: %v, want ErrService", err)
	}
	other, err := mining.NewShardedCounter(srv.CounterScheme(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ReplaceCounter(other, nil); !errors.Is(err, ErrService) {
		t.Fatalf("ReplaceCounter on a store-backed server: %v, want ErrService", err)
	}

	plain, err := NewServer(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.StoreBacked() {
		t.Fatal("plain server claims a store")
	}
	if err := plain.FlushWAL(); err != nil {
		t.Fatalf("FlushWAL without store: %v", err)
	}
	if err := plain.CheckpointNow(); err != nil {
		t.Fatalf("CheckpointNow without store: %v", err)
	}
}

// pullDelta drives one GET /v1/replicate exactly like a federation
// puller would.
func pullDelta(t *testing.T, ts *httptest.Server, since, gen uint64) *mining.CounterDelta {
	t.Helper()
	url := ts.URL + "/v1/replicate"
	if since != 0 || gen != 0 {
		url = ts.URL + "/v1/replicate?since=" + strconv.FormatUint(since, 10) +
			"&gen=" + strconv.FormatUint(gen, 10)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicate returned %s", resp.Status)
	}
	var d mining.CounterDelta
	if err := gob.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	return &d
}

// TestFederationPullerResumesAfterRestart is the acceptance criterion
// for persisted replication identity: a puller chained onto a collector
// keeps pulling INCREMENTALLY after the collector restarts from its
// store — same epoch, same baseline — instead of a full re-pull.
func TestFederationPullerResumesAfterRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	srv, ts := startStoreServer(t, dir)
	submitBatch(t, ts, 20, 74)

	// The puller's first contact: a full delta establishing its chain.
	d1 := pullDelta(t, ts, 0, 0)
	if !d1.Full() || d1.Records != 20 {
		t.Fatalf("first pull full=%v records=%d, want full 20", d1.Full(), d1.Records)
	}
	// The checkpoint persists the replication identity INCLUDING the
	// puller's baseline; later submissions ride the WAL.
	if err := srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	submitBatch(t, ts, 5, 75)
	if err := srv.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	ts.Close()

	// Restart. The puller resumes with its pre-restart (since, gen).
	srv2, ts2 := startStoreServer(t, dir)
	d2 := pullDelta(t, ts2, d1.ToVersion, d1.Generation)
	if d2.Full() {
		t.Fatal("puller was forced into a full re-pull after restart")
	}
	if d2.FromVersion != d1.ToVersion {
		t.Fatalf("incremental delta chains from %d, want %d", d2.FromVersion, d1.ToVersion)
	}
	if d2.Records != 5 {
		t.Fatalf("incremental delta carries %d records, want 5", d2.Records)
	}
	if d2.Generation != d1.Generation {
		t.Fatalf("epoch changed across restart: %d -> %d", d1.Generation, d2.Generation)
	}

	// The chain reconstructs the restarted server's counter exactly.
	replica, err := mining.NewShardedCounter(srv2.CounterScheme(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplyDelta(d1); err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplyDelta(d2); err != nil {
		t.Fatal(err)
	}
	if replica.N() != srv2.N() {
		t.Fatalf("replica has %d records, server %d", replica.N(), srv2.N())
	}
}
