package service

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mining"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Operational telemetry for the server: RED metrics and one structured
// access-log line per HTTP request, plus instrumentation hooks for the
// ingest counter, the mining job pool, and the durable store. All of it
// is opt-in via WithTelemetry / WithAccessLog and costs nothing when
// absent.
//
// Privacy contract: every metric name, label key, and label value below
// comes from operator vocabulary — route patterns, status classes, wire
// forms, shard indices. Nothing derived from record or category
// contents is ever registered or logged; TestTelemetryNeverLeaksValues
// drives sentinel categories through the API and asserts exactly that.

// WithTelemetry registers the server's operational metrics in reg and
// enables the HTTP middleware that records them. The same registry can
// (and normally should) also be handed to federation.WithMetrics and
// served via telemetry.OpsHandler on a separate ops listener.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *serverConfig) { c.metrics = reg }
}

// WithAccessLog emits one structured JSON line per HTTP request to l at
// info level. Only effective together with WithTelemetry (the access
// line is written by the metrics middleware).
func WithAccessLog(l *telemetry.Logger) Option {
	return func(c *serverConfig) { c.accessLog = l }
}

// WithCollectionLabel stamps every metric family this server registers
// (and its access-log lines) with a `collection` label — used by the
// multi-tenant registry so one shared telemetry registry separates
// tenants. The label vocabulary stays closed and bounded: values are
// registry-validated collection names (lowercase slug, max 64 chars),
// and the registry caps how many collections may exist, so the label
// can never explode cardinality or carry record contents. Servers built
// without this option register unlabeled series, byte-compatible with
// pre-registry expositions.
func WithCollectionLabel(name string) Option {
	return func(c *serverConfig) { c.collection = name }
}

// reqKey is one (route, status class, wire form) combination — a struct
// key so the hot-path map lookup below allocates nothing.
type reqKey struct {
	route string
	code  string
	wire  string
}

// serverMetrics bundles every instrument the server updates inline.
// Scrape-time callbacks (queue depth, uptime, checkpoint age) are
// registered in wire* methods against the subsystems' own state.
type serverMetrics struct {
	reg *telemetry.Registry
	log *telemetry.Logger
	// collection, when non-empty, is prefixed as a `collection` label
	// onto every series this server registers (see WithCollectionLabel).
	collection string

	inflight *telemetry.Gauge
	reqMu    sync.RWMutex
	requests map[reqKey]*telemetry.Counter

	jobs     jobMetrics
	ingest   ingestObserver
	storeObs storeObserver
}

func newServerMetrics(reg *telemetry.Registry, accessLog *telemetry.Logger, collection string) *serverMetrics {
	m := &serverMetrics{
		reg:        reg,
		log:        accessLog,
		collection: collection,
		requests:   make(map[reqKey]*telemetry.Counter),
	}
	m.inflight = reg.Gauge("frapp_http_requests_inflight",
		"HTTP requests currently being handled.", m.lbl()...)
	m.jobs.register(reg, m.lbl())
	m.ingest.register(reg, m.lbl())
	m.storeObs.register(reg, m.lbl())
	return m
}

// lbl prepends the collection label (when set) to extra. Registration
// sites only — never on the per-request hot path.
func (m *serverMetrics) lbl(extra ...telemetry.Label) []telemetry.Label {
	if m.collection == "" {
		return extra
	}
	out := make([]telemetry.Label, 0, len(extra)+1)
	out = append(out, telemetry.L("collection", m.collection))
	return append(out, extra...)
}

// requestCounter lazily materializes the counter for one label
// combination. The read path is a lock-free-ish RLock + struct-keyed
// map hit; only the first request of a new combination takes the write
// lock and the registry lock.
func (m *serverMetrics) requestCounter(route, code, wire string) *telemetry.Counter {
	k := reqKey{route: route, code: code, wire: wire}
	m.reqMu.RLock()
	c := m.requests[k]
	m.reqMu.RUnlock()
	if c != nil {
		return c
	}
	m.reqMu.Lock()
	defer m.reqMu.Unlock()
	if c := m.requests[k]; c != nil {
		return c
	}
	c = m.reg.Counter("frapp_http_requests_total",
		"HTTP requests by route pattern, status class, and wire form.",
		m.lbl(telemetry.L("route", route), telemetry.L("code", code), telemetry.L("wire", wire))...)
	m.requests[k] = c
	return c
}

// statusWriter captures the status code and response size. Pooled so
// the middleware adds no per-request allocations.
type statusWriter struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
}

var swPool = sync.Pool{New: func() any { return &statusWriter{} }}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wroteHeader {
		sw.status = code
		sw.wroteHeader = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.wroteHeader {
		sw.status = http.StatusOK
		sw.wroteHeader = true
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// statusClass buckets a status code into its class — fixed vocabulary,
// no per-code label explosion.
func statusClass(code int) string {
	switch code / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	case 5:
		return "5xx"
	default:
		return "other"
	}
}

// wireForm classifies the request's wire form from the Content-Type
// header without parsing it (mime.ParseMediaType allocates): "binary"
// for the binary batch form, "json" for any other body, "none" for
// body-less requests.
func wireForm(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	switch {
	case ct == "":
		return "none"
	case strings.HasPrefix(ct, BatchContentTypeBinary):
		return "binary"
	default:
		return "json"
	}
}

// wrap returns pattern's handler instrumented with RED metrics and the
// access log. The route label is the registered mux pattern (method
// stripped) — a closed operator vocabulary, never the raw request URL,
// so un-matched paths can't mint series and path segments carrying
// values (job ids) never become labels.
func (m *serverMetrics) wrap(pattern string, next http.HandlerFunc) http.HandlerFunc {
	route := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		route = pattern[i+1:]
	}
	dur := m.reg.Histogram("frapp_http_request_duration_seconds",
		"HTTP request latency by route pattern.", m.lbl(telemetry.L("route", route))...)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inflight.Add(1)
		sw := swPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.status, sw.bytes, sw.wroteHeader = w, http.StatusOK, 0, false
		next(sw, r)
		elapsed := time.Since(start)
		m.inflight.Add(-1)
		status, bytes := sw.status, sw.bytes
		sw.ResponseWriter = nil
		swPool.Put(sw)
		dur.Record(elapsed)
		m.requestCounter(route, statusClass(status), wireForm(r)).Inc()
		if m.log.Enabled(telemetry.LevelInfo) {
			// The request ID is generated server-side; client-supplied
			// correlation headers are deliberately not echoed into the log
			// (they are uncontrolled input on a privacy-sensitive channel).
			line := m.log.Info().
				Req(telemetry.NextRequestID()).
				Str("method", r.Method).
				Str("route", route)
			if m.collection != "" {
				// The collection name is operator vocabulary (registry-
				// validated slug), same closed set as the metric label.
				line = line.Str("collection", m.collection)
			}
			line.Int("status", int64(status)).
				Int("bytes", bytes).
				Dur("dur", elapsed).
				Msg("access")
		}
	}
}

// wireServer registers the scrape-time callbacks that sample server
// state: uptime, job queue depth, and the mining pool's run counter.
// Called once from NewServer after the job store exists.
func (m *serverMetrics) wireServer(s *Server) {
	m.reg.GaugeFunc("frapp_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() }, m.lbl()...)
	start := m.reg.Gauge("frapp_start_time_seconds",
		"Unix time the server was constructed, in seconds.", m.lbl()...)
	start.Set(float64(s.start.UnixNano()) / 1e9)
	m.reg.GaugeFunc("frapp_jobs_queue_depth",
		"Mining jobs waiting in the queue.",
		func() float64 { return float64(len(s.jobs.queue)) }, m.lbl()...)
	m.reg.CounterFunc("frapp_mine_runs_total",
		"Apriori executions (mining cache misses).",
		func() float64 { return float64(s.jobs.runs.Load()) }, m.lbl()...)
	m.reg.GaugeFunc("frapp_records",
		"Perturbed records in the live counter.",
		func() float64 { return float64(s.N()) }, m.lbl()...)
}

// observeCounter installs the ingest observer on any counter exposing
// the observer hook (sharded and windowed counters alike) — called for
// the initial counter and again whenever a state restore swaps the
// counter object.
func (m *serverMetrics) observeCounter(c mining.LiveCounter) {
	if m == nil {
		return
	}
	type observable interface {
		Shards() int
		SetIngestObserver(mining.IngestObserver)
	}
	if sc, ok := c.(observable); ok {
		m.ingest.sizeShards(m.reg, sc.Shards())
		sc.SetIngestObserver(&m.ingest)
	}
}

// jobMetrics instruments the mining job pool. Updated under the job
// store's mutex (state transitions) or from executeMine (cache
// outcome).
type jobMetrics struct {
	rejected   *telemetry.Counter
	done       *telemetry.Counter
	failed     *telemetry.Counter
	queuedDur  *telemetry.Histogram
	runningDur *telemetry.Histogram
	cacheHits  *telemetry.Counter
	cacheMiss  *telemetry.Counter
}

func (jm *jobMetrics) register(reg *telemetry.Registry, base []telemetry.Label) {
	with := func(extra ...telemetry.Label) []telemetry.Label {
		return append(append([]telemetry.Label{}, base...), extra...)
	}
	jm.rejected = reg.Counter("frapp_jobs_rejected_total",
		"Mining jobs refused because the queue was full.", base...)
	jm.done = reg.Counter("frapp_jobs_completed_total",
		"Mining jobs reaching a terminal state, by outcome.", with(telemetry.L("state", JobDone))...)
	jm.failed = reg.Counter("frapp_jobs_completed_total",
		"Mining jobs reaching a terminal state, by outcome.", with(telemetry.L("state", JobFailed))...)
	jm.queuedDur = reg.Histogram("frapp_job_state_seconds",
		"Time mining jobs spend per lifecycle state.", with(telemetry.L("state", JobQueued))...)
	jm.runningDur = reg.Histogram("frapp_job_state_seconds",
		"Time mining jobs spend per lifecycle state.", with(telemetry.L("state", JobRunning))...)
	jm.cacheHits = reg.Counter("frapp_mine_cache_hits_total",
		"Mining requests served from the snapshot-versioned result cache.", base...)
	jm.cacheMiss = reg.Counter("frapp_mine_cache_misses_total",
		"Mining requests that ran Apriori.", base...)
}

// ingestObserver implements mining.IngestObserver: per-shard record
// counts, shard-batch sizes, and lock-acquisition wait. Must stay
// allocation-free — it sits on the binary ingest fast path under the
// alloc guard test.
type ingestObserver struct {
	shardRecords []*telemetry.Counter // indexed by shard
	batches      *telemetry.Counter
	batchSize    *telemetry.Histogram
	lockWait     *telemetry.Histogram
	// base labels (the collection label, when set) applied to every
	// series, including the lazily-sized per-shard counters.
	base []telemetry.Label
}

func (o *ingestObserver) register(reg *telemetry.Registry, base []telemetry.Label) {
	o.base = base
	o.batches = reg.Counter("frapp_ingest_batches_total",
		"Shard-level ingest applications (a submitted batch counts once per shard it touches).", base...)
	o.batchSize = reg.HistogramValues("frapp_ingest_batch_records",
		"Records per shard-level ingest application.", base...)
	o.lockWait = reg.Histogram("frapp_ingest_lock_wait_seconds",
		"Time ingest waited to acquire a shard lock, measured at the mutex.", base...)
}

// sizeShards (re)builds the per-shard counter slice. Registration is
// get-or-create, so resizing across a counter swap reuses existing
// series. Not safe concurrently with ObserveIngest; callers install the
// observer before traffic (NewServer) or behind the counter swap
// (LoadState), both of which happen-before subsequent ingests.
func (o *ingestObserver) sizeShards(reg *telemetry.Registry, shards int) {
	if len(o.shardRecords) >= shards {
		return
	}
	counters := make([]*telemetry.Counter, shards)
	for i := 0; i < shards; i++ {
		labels := append(append([]telemetry.Label{}, o.base...), telemetry.L("shard", strconv.Itoa(i)))
		counters[i] = reg.Counter("frapp_ingest_records_total",
			"Perturbed records ingested, by counter shard.", labels...)
	}
	o.shardRecords = counters
}

// ObserveIngest is called once per shard slice of every ingested batch
// (and once per single-record submit, with records=1 and zero wait).
func (o *ingestObserver) ObserveIngest(shard, records int, lockWait time.Duration) {
	if shard >= 0 && shard < len(o.shardRecords) {
		o.shardRecords[shard].Add(uint64(records))
	}
	o.batches.Inc()
	o.batchSize.RecordValue(int64(records))
	if lockWait > 0 {
		o.lockWait.Record(lockWait)
	}
}

// storeObserver implements store.Observer: WAL append/fsync latency,
// segment size, checkpoint duration and age, and the recovery outcome.
// All callbacks run on the server's flusher goroutine (or startup), so
// plain instrument updates suffice.
type storeObserver struct {
	appendDur     *telemetry.Histogram
	fsyncDur      *telemetry.Histogram
	appends       *telemetry.Counter
	appendErrs    *telemetry.Counter
	appendBytes   *telemetry.Counter
	appendRecords *telemetry.Counter
	segmentBytes  *telemetry.Gauge
	ckptDur       *telemetry.Histogram
	ckpts         *telemetry.Counter
	ckptErrs      *telemetry.Counter
	ckptBytes     *telemetry.Gauge
	recRecords    *telemetry.Gauge
	recOutcome    *telemetry.Gauge
	lastCkpt      atomic.Int64 // UnixNano of the last successful checkpoint
}

var _ store.Observer = (*storeObserver)(nil)

func (o *storeObserver) register(reg *telemetry.Registry, base []telemetry.Label) {
	o.appendDur = reg.Histogram("frapp_wal_append_seconds",
		"Latency of one WAL append (delta extraction through fsync).", base...)
	o.fsyncDur = reg.Histogram("frapp_wal_fsync_seconds",
		"Latency of the fsync inside a WAL append.", base...)
	o.appends = reg.Counter("frapp_wal_appends_total",
		"WAL appends that wrote at least one frame.", base...)
	o.appendErrs = reg.Counter("frapp_wal_append_errors_total",
		"WAL appends that failed (retried by the flusher).", base...)
	o.appendBytes = reg.Counter("frapp_wal_appended_bytes_total",
		"Bytes appended to the WAL.", base...)
	o.appendRecords = reg.Counter("frapp_wal_appended_records_total",
		"Record deltas appended to the WAL.", base...)
	o.segmentBytes = reg.Gauge("frapp_wal_segment_bytes",
		"Size of the live WAL segment; drops to near zero after a checkpoint rotates it.", base...)
	o.ckptDur = reg.Histogram("frapp_checkpoint_seconds",
		"Latency of one checkpoint compaction.", base...)
	o.ckpts = reg.Counter("frapp_checkpoints_total",
		"Successful checkpoint compactions.", base...)
	o.ckptErrs = reg.Counter("frapp_checkpoint_errors_total",
		"Failed checkpoint compactions.", base...)
	o.ckptBytes = reg.Gauge("frapp_checkpoint_state_bytes",
		"Serialized state size of the newest checkpoint.", base...)
	o.recRecords = reg.Gauge("frapp_recovery_records",
		"Records recovered from durable state at startup.", base...)
	o.recOutcome = reg.Gauge("frapp_recovery_ok",
		"1 when startup recovery succeeded (including a cold start), 0 when it failed.", base...)
	reg.GaugeFunc("frapp_checkpoint_age_seconds",
		"Seconds since the last successful checkpoint; 0 until the first one.",
		func() float64 {
			t := o.lastCkpt.Load()
			if t == 0 {
				return 0
			}
			return time.Since(time.Unix(0, t)).Seconds()
		}, base...)
}

func (o *storeObserver) ObserveAppend(bytes, records int, fsync, total time.Duration, err error) {
	if err != nil {
		o.appendErrs.Inc()
		return
	}
	if bytes == 0 && records == 0 {
		return // no-op flush tick: nothing pending
	}
	o.appends.Inc()
	o.appendBytes.Add(uint64(bytes))
	o.appendRecords.Add(uint64(records))
	o.appendDur.Record(total)
	o.fsyncDur.Record(fsync)
}

func (o *storeObserver) ObserveCheckpoint(stateBytes int, total time.Duration, err error) {
	if err != nil {
		o.ckptErrs.Inc()
		return
	}
	o.ckpts.Inc()
	o.ckptDur.Record(total)
	o.ckptBytes.Set(float64(stateBytes))
	o.lastCkpt.Store(time.Now().UnixNano())
}

func (o *storeObserver) ObserveWALSize(bytes int64) {
	o.segmentBytes.Set(float64(bytes))
}

func (o *storeObserver) ObserveRecovery(records int, hadState bool, err error) {
	if err != nil {
		o.recOutcome.Set(0)
		return
	}
	o.recOutcome.Set(1)
	o.recRecords.Set(float64(records))
}
