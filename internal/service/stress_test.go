package service

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
)

// TestStressConcurrentIngestAndMineJobs is the mixed-workload race test:
// several clients stream submit-batch ingestion while several miners
// submit jobs and poll them to completion, all against one server. Run
// under -race in CI. Beyond "no crash, no race", it asserts that every
// completed job is internally consistent with the snapshot version it
// reports:
//
//   - result.Records >= result.SnapshotVersion — the version is read
//     before the shard fold, so everything visible at that version is in
//     the mined snapshot;
//   - result.Records <= final ingested total — a snapshot can never
//     contain records that were never submitted;
//   - two results for the same (version, params) are identical — the
//     cache may substitute one for the other, so divergence would be a
//     correctness bug, not a tolerance issue.
func TestStressConcurrentIngestAndMineJobs(t *testing.T) {
	srv, ts := startServer(t, WithShards(4), WithMineWorkers(3))

	const (
		submitters  = 4
		batches     = 8
		batchSize   = 50
		miners      = 3
		jobsPer     = 6
		seedRecords = 100
	)
	// Seed so even the first jobs have data.
	seedSkewed(t, ts.URL, ts.Client(), seedRecords, 40)
	finalTotal := seedRecords + submitters*batches*batchSize

	var wg sync.WaitGroup
	errs := make(chan error, submitters+miners)

	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(seed))
			for b := 0; b < batches; b++ {
				recs := make([]dataset.Record, batchSize)
				for i := range recs {
					recs[i] = dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}
				}
				if err := client.SubmitBatch(recs, rng); err != nil {
					errs <- err
					return
				}
			}
		}(int64(41 + w))
	}

	type jobOutcome struct {
		version uint64
		params  MineParams
		records int
		counts  []int
	}
	outcomes := make(chan jobOutcome, miners*jobsPer)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for w := 0; w < miners; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(seed))
			// Two alternating parameter sets exercise both cache hits
			// and misses while ingestion keeps bumping the version.
			paramSets := []MineParams{
				{MinSupport: 0.05, Limit: 10000},
				{MinSupport: 0.1, Limit: 10000, MaxLen: 2},
			}
			for j := 0; j < jobsPer; j++ {
				p := paramSets[rng.Intn(len(paramSets))]
				jr, err := client.SubmitMineJob(p)
				if err != nil {
					errs <- err
					return
				}
				done, err := client.AwaitMineJob(ctx, jr.ID, time.Millisecond)
				if err != nil {
					errs <- err
					return
				}
				outcomes <- jobOutcome{
					version: done.SnapshotVersion,
					params:  done.Params,
					records: done.Result.Records,
					counts:  done.Result.Counts,
				}
			}
		}(int64(51 + w))
	}

	wg.Wait()
	close(errs)
	close(outcomes)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.N() != finalTotal {
		t.Fatalf("ingested %d records, want %d", srv.N(), finalTotal)
	}

	type resultKey struct {
		version uint64
		minsup  float64
		maxlen  int
	}
	seen := make(map[resultKey]jobOutcome)
	count := 0
	for o := range outcomes {
		count++
		if uint64(o.records) < o.version {
			t.Fatalf("job mined %d records but reports version %d", o.records, o.version)
		}
		if o.records > finalTotal {
			t.Fatalf("job mined %d records, only %d ever submitted", o.records, finalTotal)
		}
		key := resultKey{version: o.version, minsup: o.params.MinSupport, maxlen: o.params.MaxLen}
		if prev, ok := seen[key]; ok {
			if prev.records != o.records || len(prev.counts) != len(o.counts) {
				t.Fatalf("same (version, params) produced different results: %+v vs %+v", prev, o)
			}
			for i := range prev.counts {
				if prev.counts[i] != o.counts[i] {
					t.Fatalf("same (version, params) produced different counts: %v vs %v", prev.counts, o.counts)
				}
			}
		} else {
			seen[key] = o
		}
	}
	if count != miners*jobsPer {
		t.Fatalf("collected %d outcomes, want %d", count, miners*jobsPer)
	}
}
