package service

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/mining"
)

// stressScheme selects the perturbation scheme the stress suite runs
// under: CI drives a gamma/mask/cutpaste matrix through the
// FRAPP_STRESS_SCHEME environment variable; the default is gamma.
func stressScheme(t testing.TB) string {
	t.Helper()
	name := os.Getenv("FRAPP_STRESS_SCHEME")
	if name == "" {
		return mining.SchemeGamma
	}
	return name
}

// TestStressConcurrentIngestAndQuery hammers POST /v1/query while
// submit-batch traffic keeps bumping the counter, under -race in CI.
// Per response it asserts the interactive-query contract:
//
//   - snapshot versions are monotonic per sequential client — the
//     version is an atomic that only moves forward;
//   - Records >= SnapshotVersion — the version is read before the shard
//     sweep, so everything visible at it is inside the sweep;
//   - Records never exceeds the final ingested total;
//   - every estimate is based on exactly the response's record count and
//     its interval brackets its own point estimate;
//   - the empty filter's estimate is the exact record count.
func TestStressConcurrentIngestAndQuery(t *testing.T) {
	srv, ts := startServer(t, WithScheme(stressScheme(t)), WithShards(4))

	const (
		submitters  = 4
		batches     = 8
		batchSize   = 50
		queriers    = 3
		queriesPer  = 40
		seedRecords = 100
	)
	seedSkewed(t, ts.URL, ts.Client(), seedRecords, 40)
	finalTotal := seedRecords + submitters*batches*batchSize

	var wg sync.WaitGroup
	errs := make(chan error, submitters+queriers)

	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(seed))
			for b := 0; b < batches; b++ {
				recs := make([]dataset.Record, batchSize)
				for i := range recs {
					recs[i] = dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}
				}
				if err := client.SubmitBatch(recs, rng); err != nil {
					errs <- err
					return
				}
			}
		}(int64(61 + w))
	}

	responses := make(chan *QueryResponse, queriers*queriesPer)
	filters := []QueryFilter{
		{},
		{"a": "a0"},
		{"b": "b1"},
		{"a": "a0", "b": "b0"},
		{"a": "a1", "b": "b1", "c": "c2"},
	}
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
			if err != nil {
				errs <- err
				return
			}
			var lastVersion uint64
			for q := 0; q < queriesPer; q++ {
				qr, err := client.QueryAll(filters)
				if err != nil {
					errs <- err
					return
				}
				if qr.SnapshotVersion < lastVersion {
					errs <- fmt.Errorf("snapshot version went backwards: %d then %d", lastVersion, qr.SnapshotVersion)
					return
				}
				lastVersion = qr.SnapshotVersion
				responses <- qr
			}
		}()
	}

	wg.Wait()
	close(errs)
	close(responses)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.N() != finalTotal {
		t.Fatalf("ingested %d records, want %d", srv.N(), finalTotal)
	}
	count := 0
	for qr := range responses {
		count++
		if uint64(qr.Records) < qr.SnapshotVersion {
			t.Fatalf("response over %d records reports version %d", qr.Records, qr.SnapshotVersion)
		}
		if qr.Records > finalTotal {
			t.Fatalf("response over %d records, only %d ever submitted", qr.Records, finalTotal)
		}
		if len(qr.Estimates) != len(filters) {
			t.Fatalf("%d estimates for %d filters", len(qr.Estimates), len(filters))
		}
		for i, e := range qr.Estimates {
			if e.N != qr.Records {
				t.Fatalf("estimate %d: n %d != response records %d", i, e.N, qr.Records)
			}
			if e.Lo > e.Count || e.Count > e.Hi {
				t.Fatalf("estimate %d: interval [%v, %v] misses point %v", i, e.Lo, e.Hi, e.Count)
			}
		}
		if exact := qr.Estimates[0]; exact.Count != float64(qr.Records) {
			t.Fatalf("empty filter count %v over %d records", exact.Count, qr.Records)
		}
	}
	if count != queriers*queriesPer {
		t.Fatalf("collected %d responses, want %d", count, queriers*queriesPer)
	}
}

// TestStressConcurrentIngestAndMineJobs is the mixed-workload race test:
// several clients stream submit-batch ingestion while several miners
// submit jobs and poll them to completion, all against one server. Run
// under -race in CI. Beyond "no crash, no race", it asserts that every
// completed job is internally consistent with the snapshot version it
// reports:
//
//   - result.Records >= result.SnapshotVersion — the version is read
//     before the shard fold, so everything visible at that version is in
//     the mined snapshot;
//   - result.Records <= final ingested total — a snapshot can never
//     contain records that were never submitted;
//   - two results for the same (version, params) are identical — the
//     cache may substitute one for the other, so divergence would be a
//     correctness bug, not a tolerance issue.
func TestStressConcurrentIngestAndMineJobs(t *testing.T) {
	srv, ts := startServer(t, WithScheme(stressScheme(t)), WithShards(4), WithMineWorkers(3))

	const (
		submitters  = 4
		batches     = 8
		batchSize   = 50
		miners      = 3
		jobsPer     = 6
		seedRecords = 100
	)
	// Seed so even the first jobs have data.
	seedSkewed(t, ts.URL, ts.Client(), seedRecords, 40)
	finalTotal := seedRecords + submitters*batches*batchSize

	var wg sync.WaitGroup
	errs := make(chan error, submitters+miners)

	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(seed))
			for b := 0; b < batches; b++ {
				recs := make([]dataset.Record, batchSize)
				for i := range recs {
					recs[i] = dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}
				}
				if err := client.SubmitBatch(recs, rng); err != nil {
					errs <- err
					return
				}
			}
		}(int64(41 + w))
	}

	type jobOutcome struct {
		version uint64
		params  MineParams
		records int
		counts  []int
	}
	outcomes := make(chan jobOutcome, miners*jobsPer)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for w := 0; w < miners; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(seed))
			// Two alternating parameter sets exercise both cache hits
			// and misses while ingestion keeps bumping the version.
			paramSets := []MineParams{
				{MinSupport: 0.05, Limit: 10000},
				{MinSupport: 0.1, Limit: 10000, MaxLen: 2},
			}
			for j := 0; j < jobsPer; j++ {
				p := paramSets[rng.Intn(len(paramSets))]
				jr, err := client.SubmitMineJob(p)
				if err != nil {
					errs <- err
					return
				}
				done, err := client.AwaitMineJob(ctx, jr.ID, time.Millisecond)
				if err != nil {
					errs <- err
					return
				}
				outcomes <- jobOutcome{
					version: done.SnapshotVersion,
					params:  done.Params,
					records: done.Result.Records,
					counts:  done.Result.Counts,
				}
			}
		}(int64(51 + w))
	}

	wg.Wait()
	close(errs)
	close(outcomes)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.N() != finalTotal {
		t.Fatalf("ingested %d records, want %d", srv.N(), finalTotal)
	}

	type resultKey struct {
		version uint64
		minsup  float64
		maxlen  int
	}
	seen := make(map[resultKey]jobOutcome)
	count := 0
	for o := range outcomes {
		count++
		if uint64(o.records) < o.version {
			t.Fatalf("job mined %d records but reports version %d", o.records, o.version)
		}
		if o.records > finalTotal {
			t.Fatalf("job mined %d records, only %d ever submitted", o.records, finalTotal)
		}
		key := resultKey{version: o.version, minsup: o.params.MinSupport, maxlen: o.params.MaxLen}
		if prev, ok := seen[key]; ok {
			if prev.records != o.records || len(prev.counts) != len(o.counts) {
				t.Fatalf("same (version, params) produced different results: %+v vs %+v", prev, o)
			}
			for i := range prev.counts {
				if prev.counts[i] != o.counts[i] {
					t.Fatalf("same (version, params) produced different counts: %v vs %v", prev.counts, o.counts)
				}
			}
		} else {
			seen[key] = o
		}
	}
	if count != miners*jobsPer {
		t.Fatalf("collected %d outcomes, want %d", count, miners*jobsPer)
	}
}
