package service

import (
	"fmt"
	"time"

	"repro/internal/store"
)

// Durable persistence integration: a store-backed server logs its
// counter's changes to a write-ahead log and compacts them into
// checkpoints continuously, instead of persisting once at shutdown. All
// store I/O happens on one background flusher goroutine (plus explicit
// FlushWAL/CheckpointNow calls, serialized by storeMu), never on the
// submit hot path — ingestion only touches the in-memory counter, and
// the flusher extracts batched deltas on its own clock.

const (
	// defaultWALFlushInterval bounds how much acknowledged data a crash
	// can lose: at most one flush interval's worth of submissions.
	defaultWALFlushInterval = 200 * time.Millisecond
	// defaultCheckpointEvery is the record threshold that triggers WAL
	// compaction into a fresh checkpoint.
	defaultCheckpointEvery = 10000
)

// WithStore attaches a durable state store: the server recovers its
// counter from the store at construction (checkpoint + WAL-tail replay),
// then continuously appends counter deltas to the store's WAL and
// checkpoints on record thresholds. The server owns the store from here:
// it is closed by Server.Close. Mutually exclusive with LoadState and
// with the federation-coordinator role, both of which swap the counter
// object out from under the store's log chain.
func WithStore(st store.StateStore) Option {
	return func(c *serverConfig) { c.store = st }
}

// WithCheckpointEvery sets how many WAL-logged records trigger a
// compacted checkpoint. Values <= 0 (and the default) mean 10000.
func WithCheckpointEvery(n int) Option {
	return func(c *serverConfig) { c.checkpointEvery = n }
}

// WithWALFlushInterval sets the flusher's batching interval — the upper
// bound on acknowledged-but-not-yet-durable data after a crash. Values
// <= 0 (and the default) mean 200ms.
func WithWALFlushInterval(d time.Duration) Option {
	return func(c *serverConfig) { c.walFlush = d }
}

// errStoreBacked rejects operations that would swap the counter object
// out from under the attached store's WAL chain.
var errStoreBacked = fmt.Errorf("%w: server is store-backed; durable state is managed by the store", ErrService)

// persistLoop is the background flusher: every interval it appends the
// counter's pending changes to the WAL, and compacts into a checkpoint
// once enough records accumulate. A failed append or checkpoint is
// retried on the next tick — the counter itself is never blocked or
// mutated by persistence errors.
func (s *Server) persistLoop(interval time.Duration) {
	defer close(s.persistDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.persistStop:
			return
		case <-t.C:
			s.storeMu.Lock()
			if err := s.store.Append(); err == nil &&
				s.checkpointEvery > 0 && s.store.SinceCheckpoint() >= s.checkpointEvery {
				_ = s.store.Checkpoint()
			}
			s.storeMu.Unlock()
		}
	}
}

// FlushWAL forces the pending counter changes into the WAL now, without
// waiting for the flusher tick — after it returns, every record ingested
// before the call is durable (under the store's sync mode). A no-op on a
// server without a store.
func (s *Server) FlushWAL() error {
	if s.store == nil {
		return nil
	}
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	return s.store.Append()
}

// CheckpointNow forces WAL compaction into a fresh checkpoint now,
// regardless of the record threshold. A no-op on a server without a
// store.
func (s *Server) CheckpointNow() error {
	if s.store == nil {
		return nil
	}
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	return s.store.Checkpoint()
}

// StoreBacked reports whether a durable store is attached.
func (s *Server) StoreBacked() bool { return s.store != nil }
