package service

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/mining"
)

// Client is the user-side library: it fetches the published schema and
// privacy contract, rebuilds the gamma-diagonal matrix locally, and
// perturbs every record on the client before anything is transmitted —
// the FRAPP trust model in which users "trust no one except themselves".
type Client struct {
	base      string
	http      *http.Client
	schema    *dataset.Schema
	perturber core.Perturber
	gamma     float64
}

// ClientOption configures a Client.
type ClientOption func(*clientConfig)

type clientConfig struct {
	httpClient    *http.Client
	randomization float64
}

// WithHTTPClient substitutes the transport (tests use the httptest
// server's client).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *clientConfig) { c.httpClient = h }
}

// WithClientRandomization enables RAN-GD perturbation with amplitude
// fraction·γx, giving the client privacy beyond the published contract.
func WithClientRandomization(fraction float64) ClientOption {
	return func(c *clientConfig) { c.randomization = fraction }
}

// NewClient contacts the server, verifies the contract, and prepares the
// local perturber.
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	cfg := clientConfig{httpClient: http.DefaultClient}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.randomization < 0 || cfg.randomization > 1 {
		return nil, fmt.Errorf("%w: randomization fraction %v", ErrService, cfg.randomization)
	}
	resp, err := cfg.httpClient.Get(baseURL + "/v1/schema")
	if err != nil {
		return nil, fmt.Errorf("service: fetching schema: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: schema fetch returned %s", ErrService, resp.Status)
	}
	var sr SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("%w: bad schema response: %v", ErrService, err)
	}
	attrs := make([]dataset.Attribute, len(sr.Attributes))
	for i, a := range sr.Attributes {
		attrs[i] = dataset.Attribute{Name: a.Name, Categories: a.Categories}
	}
	schema, err := dataset.NewSchema(sr.Name, attrs)
	if err != nil {
		return nil, err
	}
	// Rebuild the matrix locally from the contract — the client does not
	// take the server's word for the perturbation parameters.
	spec := core.PrivacySpec{Rho1: sr.Privacy.Rho1, Rho2: sr.Privacy.Rho2}
	gamma, err := spec.Gamma()
	if err != nil {
		return nil, err
	}
	matrix, err := core.NewGammaDiagonal(schema.DomainSize(), gamma)
	if err != nil {
		return nil, err
	}
	var perturber core.Perturber
	if cfg.randomization > 0 {
		perturber, err = core.NewRandomizedGammaPerturber(schema, matrix, cfg.randomization*matrix.Diag)
	} else {
		perturber, err = core.NewGammaPerturber(schema, matrix)
	}
	if err != nil {
		return nil, err
	}
	return &Client{
		base:      baseURL,
		http:      cfg.httpClient,
		schema:    schema,
		perturber: perturber,
		gamma:     gamma,
	}, nil
}

// Schema returns the schema fetched from the server.
func (c *Client) Schema() *dataset.Schema { return c.schema }

// Gamma returns the amplification bound of the published contract.
func (c *Client) Gamma() float64 { return c.gamma }

// Submit perturbs rec locally and sends only the distorted record.
func (c *Client) Submit(rec dataset.Record, rng *rand.Rand) error {
	perturbed, err := c.perturber.Perturb(rec, rng)
	if err != nil {
		return err
	}
	body, err := json.Marshal(c.encodeRecord(perturbed))
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("%w: submit returned %s", ErrService, resp.Status)
	}
	return nil
}

// SubmitBatch perturbs and submits many records in one request.
func (c *Client) SubmitBatch(recs []dataset.Record, rng *rand.Rand) error {
	batch := make([]RecordJSON, 0, len(recs))
	for _, rec := range recs {
		perturbed, err := c.perturber.Perturb(rec, rng)
		if err != nil {
			return err
		}
		batch = append(batch, c.encodeRecord(perturbed))
	}
	body, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+"/v1/submit-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("%w: batch submit returned %s", ErrService, resp.Status)
	}
	return nil
}

// Mine queries the server's reconstructed mining model synchronously
// (the server runs the request through its job pool and awaits it).
func (c *Client) Mine(minsup, minconf float64, limit int) (*MineResponse, error) {
	url := fmt.Sprintf("%s/v1/mine?minsup=%g&minconf=%g&limit=%d", c.base, minsup, minconf, limit)
	resp, err := c.http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: mine returned %s", ErrService, resp.Status)
	}
	var mr MineResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, fmt.Errorf("%w: bad mine response: %v", ErrService, err)
	}
	return &mr, nil
}

// SubmitMineJob enqueues an asynchronous mining job and returns its
// initial (queued) state. Poll with MineJob or block with AwaitMineJob.
func (c *Client) SubmitMineJob(p MineParams) (*JobResponse, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/v1/mine-jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("%w: mine-job submit returned %s", ErrService, resp.Status)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return nil, fmt.Errorf("%w: bad mine-job response: %v", ErrService, err)
	}
	return &jr, nil
}

// MineJob polls one job by id; done jobs include the full result.
func (c *Client) MineJob(id string) (*JobResponse, error) {
	resp, err := c.http.Get(c.base + "/v1/mine-jobs/" + url.PathEscape(id))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: mine-job %s returned %s", ErrService, id, resp.Status)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return nil, fmt.Errorf("%w: bad mine-job response: %v", ErrService, err)
	}
	return &jr, nil
}

// MineJobs lists all retained jobs (without result payloads).
func (c *Client) MineJobs() ([]JobResponse, error) {
	resp, err := c.http.Get(c.base + "/v1/mine-jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: mine-job list returned %s", ErrService, resp.Status)
	}
	var jrs []JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jrs); err != nil {
		return nil, fmt.Errorf("%w: bad mine-job list: %v", ErrService, err)
	}
	return jrs, nil
}

// AwaitMineJob polls a job until it reaches a terminal state. A done
// job is returned with its result; a failed job returns the server's
// error. The poll interval defaults to 50ms when non-positive.
func (c *Client) AwaitMineJob(ctx context.Context, id string, poll time.Duration) (*JobResponse, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		jr, err := c.MineJob(id)
		if err != nil {
			return nil, err
		}
		switch jr.State {
		case JobDone:
			return jr, nil
		case JobFailed:
			return jr, fmt.Errorf("%w: job %s failed: %s", ErrService, id, jr.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// MineAsync is the submit-then-await convenience: it enqueues a job and
// polls it to completion, returning the mining result.
func (c *Client) MineAsync(ctx context.Context, p MineParams) (*MineResponse, error) {
	jr, err := c.SubmitMineJob(p)
	if err != nil {
		return nil, err
	}
	done, err := c.AwaitMineJob(ctx, jr.ID, 0)
	if err != nil {
		return nil, err
	}
	return done.Result, nil
}

// QueryAll answers a batch of filter-count queries with reconstructed
// estimates and 95% confidence intervals. Each filter is a conjunction
// of attribute=category conditions; the empty filter matches every
// record. Estimates come in filter order, all based on the same record
// count, and the response carries the snapshot version it is exact for.
func (c *Client) QueryAll(filters []QueryFilter) (*QueryResponse, error) {
	// Marshaled directly rather than through QueryRequest: the raw
	// message indirection there exists for the server's duplicate-key
	// detection, which string-keyed maps cannot trip.
	body, err := json.Marshal(struct {
		Filters []QueryFilter `json:"filters"`
	}{Filters: filters})
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: query returned %s", ErrService, resp.Status)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, fmt.Errorf("%w: bad query response: %v", ErrService, err)
	}
	if len(qr.Estimates) != len(filters) {
		return nil, fmt.Errorf("%w: query returned %d estimates for %d filters", ErrService, len(qr.Estimates), len(filters))
	}
	return &qr, nil
}

// Query is the single-filter convenience over QueryAll.
func (c *Client) Query(filter QueryFilter) (QueryEstimate, error) {
	qr, err := c.QueryAll([]QueryFilter{filter})
	if err != nil {
		return QueryEstimate{}, err
	}
	return qr.Estimates[0], nil
}

// Replicate pulls one counter delta from the server — the client side
// of GET /v1/replicate. since is the stream position a previous pull's
// ToVersion reported (0 for first contact) and gen the counter
// generation it was reported under; the server falls back to a full
// delta whenever the pair no longer chains. Mostly used by federation
// coordinators (internal/federation); exposed here so external tooling
// can mirror a site's privacy-safe counts too.
func (c *Client) Replicate(since, gen uint64) (*mining.CounterDelta, error) {
	resp, err := c.http.Get(fmt.Sprintf("%s/v1/replicate?since=%d&gen=%d", c.base, since, gen))
	if err != nil {
		return nil, err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: replicate returned %s", ErrService, resp.Status)
	}
	var d mining.CounterDelta
	if err := gob.NewDecoder(io.LimitReader(resp.Body, mining.MaxDeltaWireBytes)).Decode(&d); err != nil {
		return nil, fmt.Errorf("%w: bad replicate payload: %v", ErrService, err)
	}
	return &d, nil
}

// FederationStats queries the federation health block of /v1/stats —
// per-peer sync state, lag, and the global version vector. Errors when
// the server is not a federation coordinator.
func (c *Client) FederationStats() (*federation.Stats, error) {
	sr, err := c.Stats()
	if err != nil {
		return nil, err
	}
	if sr.Federation == nil {
		return nil, fmt.Errorf("%w: server is not a federation coordinator", ErrService)
	}
	return sr.Federation, nil
}

// Stats queries the collection state.
func (c *Client) Stats() (*StatsResponse, error) {
	resp, err := c.http.Get(c.base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: stats returned %s", ErrService, resp.Status)
	}
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("%w: bad stats response: %v", ErrService, err)
	}
	return &sr, nil
}

func (c *Client) encodeRecord(rec dataset.Record) RecordJSON {
	out := make(RecordJSON, len(rec))
	for j, v := range rec {
		a := c.schema.Attrs[j]
		out[a.Name] = a.Categories[v]
	}
	return out
}

func drain(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}
