package service

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/mining"
)

// Client is the user-side library: it fetches the published schema and
// privacy contract, validates the advertised perturbation scheme against
// that contract, rebuilds the scheme locally, and perturbs every record
// on the client before anything is transmitted — the FRAPP trust model
// in which users "trust no one except themselves". The client does not
// take the server's word for the scheme parameters: it re-derives what
// it can (the gamma-diagonal matrix) and verifies the worst-case
// amplification of the rest (MASK's p, C&P's K and ρ) against the
// published γ bound, refusing to submit under a contract that leaks
// more than advertised.
type Client struct {
	base   string
	http   *http.Client
	schema *dataset.Schema
	scheme string
	gamma  float64
	// perturber is set for the gamma scheme; mask/cutpaste for the
	// boolean schemes (exactly one of the three is non-nil).
	perturber core.Perturber
	mask      *core.MaskScheme
	cutpaste  *core.CutPasteScheme
	// fingerprint is the scheme compatibility fingerprint computed
	// LOCALLY from the verified contract — sent with binary batches so
	// the server can prove both sides count under the same parameters.
	fingerprint string
}

// ClientOption configures a Client.
type ClientOption func(*clientConfig)

type clientConfig struct {
	httpClient    *http.Client
	randomization float64
}

// WithHTTPClient substitutes the transport (tests use the httptest
// server's client).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *clientConfig) { c.httpClient = h }
}

// WithClientRandomization enables RAN-GD perturbation with amplitude
// fraction·γx, giving the client privacy beyond the published contract.
func WithClientRandomization(fraction float64) ClientOption {
	return func(c *clientConfig) { c.randomization = fraction }
}

// NewClient contacts the server, verifies the contract, and prepares the
// local perturber.
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	cfg := clientConfig{httpClient: http.DefaultClient}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.randomization < 0 || cfg.randomization > 1 {
		return nil, fmt.Errorf("%w: randomization fraction %v", ErrService, cfg.randomization)
	}
	resp, err := cfg.httpClient.Get(baseURL + "/v1/schema")
	if err != nil {
		return nil, fmt.Errorf("service: fetching schema: %w", err)
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: schema fetch returned %s", ErrService, resp.Status)
	}
	var sr SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("%w: bad schema response: %v", ErrService, err)
	}
	attrs := make([]dataset.Attribute, len(sr.Attributes))
	for i, a := range sr.Attributes {
		attrs[i] = dataset.Attribute{Name: a.Name, Categories: a.Categories}
	}
	schema, err := dataset.NewSchema(sr.Name, attrs)
	if err != nil {
		return nil, err
	}
	// Rebuild the contract locally — the client does not take the
	// server's word for the perturbation parameters.
	spec := core.PrivacySpec{Rho1: sr.Privacy.Rho1, Rho2: sr.Privacy.Rho2}
	gamma, err := spec.Gamma()
	if err != nil {
		return nil, err
	}
	c := &Client{
		base:   baseURL,
		http:   cfg.httpClient,
		schema: schema,
		gamma:  gamma,
	}
	// Responses from pre-scheme servers carry no scheme block; that is
	// the gamma default.
	schemeName := sr.Scheme.Name
	if schemeName == "" {
		schemeName = mining.SchemeGamma
	}
	c.scheme = schemeName
	if cfg.randomization > 0 && schemeName != mining.SchemeGamma {
		return nil, fmt.Errorf("%w: client-side randomization is a gamma-scheme extension, server runs %q", ErrService, schemeName)
	}
	switch schemeName {
	case mining.SchemeGamma:
		matrix, err := core.NewGammaDiagonal(schema.DomainSize(), gamma)
		if err != nil {
			return nil, err
		}
		if cfg.randomization > 0 {
			c.perturber, err = core.NewRandomizedGammaPerturber(schema, matrix, cfg.randomization*matrix.Diag)
		} else {
			c.perturber, err = core.NewGammaPerturber(schema, matrix)
		}
		if err != nil {
			return nil, err
		}
		c.fingerprint = mining.CompatibilityFingerprint(schema, matrix)
	case mining.SchemeMask:
		bm, err := core.NewBoolMapping(schema)
		if err != nil {
			return nil, err
		}
		mask, err := core.NewMaskScheme(bm, sr.Scheme.MaskP)
		if err != nil {
			return nil, err
		}
		// Verify the advertised retention probability actually satisfies
		// the published privacy bound before perturbing anything with it.
		if amp := mask.Amplification(); amp > gamma*(1+1e-9) {
			return nil, fmt.Errorf("%w: advertised MASK p=%g amplifies to %.4g, violating the published gamma=%g",
				ErrService, sr.Scheme.MaskP, amp, gamma)
		}
		c.mask = mask
		ms, err := mining.NewMaskCounterScheme(mask)
		if err != nil {
			return nil, err
		}
		c.fingerprint = ms.Fingerprint()
	case mining.SchemeCutPaste:
		bm, err := core.NewBoolMapping(schema)
		if err != nil {
			return nil, err
		}
		cp, err := core.NewCutPasteScheme(bm, sr.Scheme.CutK, sr.Scheme.CutRho)
		if err != nil {
			return nil, err
		}
		if amp := cp.Amplification(); amp > gamma*(1+1e-9) {
			return nil, fmt.Errorf("%w: advertised C&P K=%d rho=%g amplifies to %.4g, violating the published gamma=%g",
				ErrService, sr.Scheme.CutK, sr.Scheme.CutRho, amp, gamma)
		}
		c.cutpaste = cp
		cs, err := mining.NewCutPasteCounterScheme(cp)
		if err != nil {
			return nil, err
		}
		c.fingerprint = cs.Fingerprint()
	default:
		return nil, fmt.Errorf("%w: server runs unsupported scheme %q", ErrService, schemeName)
	}
	return c, nil
}

// Scheme returns the negotiated perturbation scheme.
func (c *Client) Scheme() string { return c.scheme }

// Fingerprint returns the scheme compatibility fingerprint the client
// derived from the verified contract.
func (c *Client) Fingerprint() string { return c.fingerprint }

// Schema returns the schema fetched from the server.
func (c *Client) Schema() *dataset.Schema { return c.schema }

// Gamma returns the amplification bound of the published contract.
func (c *Client) Gamma() float64 { return c.gamma }

// perturbWire perturbs one record under the negotiated scheme and
// renders it in the scheme's wire form: RecordJSON for gamma,
// BoolRecordJSON for the boolean schemes.
func (c *Client) perturbWire(rec dataset.Record, rng *rand.Rand) (any, error) {
	switch {
	case c.perturber != nil:
		perturbed, err := c.perturber.Perturb(rec, rng)
		if err != nil {
			return nil, err
		}
		return c.encodeRecord(perturbed), nil
	case c.mask != nil:
		row, err := c.mask.PerturbRecord(rec, rng)
		if err != nil {
			return nil, err
		}
		return c.encodeBoolRecord(c.mask.Mapping, row), nil
	default:
		row, err := c.cutpaste.PerturbRecord(rec, rng)
		if err != nil {
			return nil, err
		}
		return c.encodeBoolRecord(c.cutpaste.Mapping, row), nil
	}
}

// perturbItems perturbs one record under the negotiated scheme and
// returns it as the (attr, value) index list of the binary wire form.
func (c *Client) perturbItems(rec dataset.Record, rng *rand.Rand) ([]mining.Item, error) {
	switch {
	case c.perturber != nil:
		perturbed, err := c.perturber.Perturb(rec, rng)
		if err != nil {
			return nil, err
		}
		items := make([]mining.Item, len(perturbed))
		for j, v := range perturbed {
			items[j] = mining.Item{Attr: j, Value: v}
		}
		return items, nil
	case c.mask != nil:
		row, err := c.mask.PerturbRecord(rec, rng)
		if err != nil {
			return nil, err
		}
		return c.rowItems(c.mask.Mapping, row), nil
	default:
		row, err := c.cutpaste.PerturbRecord(rec, rng)
		if err != nil {
			return nil, err
		}
		return c.rowItems(c.cutpaste.Mapping, row), nil
	}
}

// rowItems unpacks a perturbed boolean row into (attr, value) items.
func (c *Client) rowItems(m *core.BoolMapping, row uint64) []mining.Item {
	var items []mining.Item
	for j, a := range c.schema.Attrs {
		for v := 0; v < a.Cardinality(); v++ {
			if row&(1<<uint(m.Offsets[j]+v)) != 0 {
				items = append(items, mining.Item{Attr: j, Value: v})
			}
		}
	}
	return items
}

// Submit perturbs rec locally and sends only the distorted record.
func (c *Client) Submit(rec dataset.Record, rng *rand.Rand) error {
	wire, err := c.perturbWire(rec, rng)
	if err != nil {
		return err
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("%w: submit returned %s", ErrService, resp.Status)
	}
	return nil
}

// SubmitBatch perturbs and submits many records in one request.
func (c *Client) SubmitBatch(recs []dataset.Record, rng *rand.Rand) error {
	p, err := c.PrepareBatch(recs, rng)
	if err != nil {
		return err
	}
	return c.SubmitPrepared(p)
}

// PreparedBatch is a batch of locally perturbed records already encoded
// into its wire body. Preparation (perturbation + JSON encoding) is the
// CPU-heavy client-side half of a batched submission; splitting it from
// the transmission lets callers do it off the latency path — the load
// harness (internal/loadgen) prepares its whole synthetic population
// up front so that open-loop submit latencies measure the server, not
// the generator.
type PreparedBatch struct {
	body []byte
	n    int
	// contentType and fingerprint carry the wire negotiation: the body's
	// media type and, for binary bodies, the scheme fingerprint header.
	contentType string
	fingerprint string
}

// Len returns the number of records in the prepared batch.
func (p *PreparedBatch) Len() int { return p.n }

// WireSize returns the encoded body size in bytes.
func (p *PreparedBatch) WireSize() int { return len(p.body) }

// Body returns the encoded wire body. Callers must treat it as
// read-only — the same bytes back every prepared transmission.
func (p *PreparedBatch) Body() []byte { return p.body }

// ContentType returns the media type the body must be posted under.
func (p *PreparedBatch) ContentType() string { return p.contentType }

// Fingerprint returns the scheme fingerprint a binary submission
// carries in the FingerprintHeader ("" for JSON bodies).
func (p *PreparedBatch) Fingerprint() string { return p.fingerprint }

// Wire names for PrepareBatchWire and the load harness's -wire flag.
const (
	WireJSON   = "json"
	WireBinary = "binary"
)

// PrepareBatch perturbs recs under the negotiated scheme and encodes
// the result as one reusable JSON submit-batch body. The perturbation
// is drawn now, from rng — submitting the same prepared batch twice
// sends the same perturbed records twice.
func (c *Client) PrepareBatch(recs []dataset.Record, rng *rand.Rand) (*PreparedBatch, error) {
	return c.PrepareBatchWire(recs, rng, WireJSON)
}

// PrepareBatchWire is PrepareBatch with an explicit wire form: "json"
// (or "") for the self-describing category-name encoding, "binary" for
// the compact index encoding the server's pooled fast path decodes.
func (c *Client) PrepareBatchWire(recs []dataset.Record, rng *rand.Rand, wire string) (*PreparedBatch, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrService)
	}
	switch wire {
	case WireJSON, "":
		batch := make([]any, 0, len(recs))
		for _, rec := range recs {
			w, err := c.perturbWire(rec, rng)
			if err != nil {
				return nil, err
			}
			batch = append(batch, w)
		}
		body, err := json.Marshal(batch)
		if err != nil {
			return nil, err
		}
		return &PreparedBatch{body: body, n: len(recs), contentType: BatchContentTypeJSON}, nil
	case WireBinary:
		records := make([][]mining.Item, len(recs))
		for i, rec := range recs {
			items, err := c.perturbItems(rec, rng)
			if err != nil {
				return nil, err
			}
			records[i] = items
		}
		return &PreparedBatch{
			body:        appendBinaryBatch(nil, records),
			n:           len(recs),
			contentType: BatchContentTypeBinary,
			fingerprint: c.fingerprint,
		}, nil
	default:
		return nil, fmt.Errorf("%w: unknown wire form %q (want %q or %q)", ErrService, wire, WireJSON, WireBinary)
	}
}

// SubmitPrepared transmits a prepared batch.
func (c *Client) SubmitPrepared(p *PreparedBatch) error {
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/submit-batch", bytes.NewReader(p.body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", p.contentType)
	if p.fingerprint != "" {
		req.Header.Set(FingerprintHeader, p.fingerprint)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("%w: batch submit returned %s", ErrService, resp.Status)
	}
	return nil
}

// Mine queries the server's reconstructed mining model synchronously
// (the server runs the request through its job pool and awaits it).
func (c *Client) Mine(minsup, minconf float64, limit int) (*MineResponse, error) {
	url := fmt.Sprintf("%s/v1/mine?minsup=%g&minconf=%g&limit=%d", c.base, minsup, minconf, limit)
	resp, err := c.http.Get(url)
	if err != nil {
		return nil, err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: mine returned %s", ErrService, resp.Status)
	}
	var mr MineResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, fmt.Errorf("%w: bad mine response: %v", ErrService, err)
	}
	return &mr, nil
}

// ErrBusy marks server backpressure: the request was well-formed but
// the server refused to take on the work right now (a full mine-job
// queue answering 503). Callers generating load distinguish this from
// hard failures — backpressure under overload is the server working as
// designed, not an error in either party.
var ErrBusy = errors.New("service: server busy")

// SubmitMineJob enqueues an asynchronous mining job and returns its
// initial (queued) state. Poll with MineJob or block with AwaitMineJob.
// A full job queue returns an error wrapping ErrBusy.
func (c *Client) SubmitMineJob(p MineParams) (*JobResponse, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/v1/mine-jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer drain(resp.Body)
	if resp.StatusCode == http.StatusServiceUnavailable {
		return nil, fmt.Errorf("%w: mine-job submit returned %s", ErrBusy, resp.Status)
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("%w: mine-job submit returned %s", ErrService, resp.Status)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return nil, fmt.Errorf("%w: bad mine-job response: %v", ErrService, err)
	}
	return &jr, nil
}

// MineJob polls one job by id; done jobs include the full result.
func (c *Client) MineJob(id string) (*JobResponse, error) {
	resp, err := c.http.Get(c.base + "/v1/mine-jobs/" + url.PathEscape(id))
	if err != nil {
		return nil, err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: mine-job %s returned %s", ErrService, id, resp.Status)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return nil, fmt.Errorf("%w: bad mine-job response: %v", ErrService, err)
	}
	return &jr, nil
}

// MineJobs lists all retained jobs (without result payloads).
func (c *Client) MineJobs() ([]JobResponse, error) {
	resp, err := c.http.Get(c.base + "/v1/mine-jobs")
	if err != nil {
		return nil, err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: mine-job list returned %s", ErrService, resp.Status)
	}
	var jrs []JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jrs); err != nil {
		return nil, fmt.Errorf("%w: bad mine-job list: %v", ErrService, err)
	}
	return jrs, nil
}

// AwaitMineJob polls a job until it reaches a terminal state. A done
// job is returned with its result; a failed job returns the server's
// error. The poll interval defaults to 50ms when non-positive.
func (c *Client) AwaitMineJob(ctx context.Context, id string, poll time.Duration) (*JobResponse, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		jr, err := c.MineJob(id)
		if err != nil {
			return nil, err
		}
		switch jr.State {
		case JobDone:
			return jr, nil
		case JobFailed:
			return jr, fmt.Errorf("%w: job %s failed: %s", ErrService, id, jr.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// MineAsync is the submit-then-await convenience: it enqueues a job and
// polls it to completion, returning the mining result.
func (c *Client) MineAsync(ctx context.Context, p MineParams) (*MineResponse, error) {
	jr, err := c.SubmitMineJob(p)
	if err != nil {
		return nil, err
	}
	done, err := c.AwaitMineJob(ctx, jr.ID, 0)
	if err != nil {
		return nil, err
	}
	return done.Result, nil
}

// QueryAll answers a batch of filter-count queries with reconstructed
// estimates and 95% confidence intervals. Each filter is a conjunction
// of attribute=category conditions; the empty filter matches every
// record. Estimates come in filter order, all based on the same record
// count, and the response carries the snapshot version it is exact for.
func (c *Client) QueryAll(filters []QueryFilter) (*QueryResponse, error) {
	return c.QueryWindow(filters, "")
}

// QueryWindow is QueryAll restricted to the records of the last window
// of wall-clock time (a Go duration string, e.g. "24h"), rounded up to
// whole ring buckets. Only windowed collections accept a non-empty
// window; the empty string queries the full collection.
func (c *Client) QueryWindow(filters []QueryFilter, window string) (*QueryResponse, error) {
	// Marshaled directly rather than through QueryRequest: the raw
	// message indirection there exists for the server's duplicate-key
	// detection, which string-keyed maps cannot trip.
	body, err := json.Marshal(struct {
		Filters []QueryFilter `json:"filters"`
		Window  string        `json:"window,omitempty"`
	}{Filters: filters, Window: window})
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: query returned %s", ErrService, resp.Status)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, fmt.Errorf("%w: bad query response: %v", ErrService, err)
	}
	if len(qr.Estimates) != len(filters) {
		return nil, fmt.Errorf("%w: query returned %d estimates for %d filters", ErrService, len(qr.Estimates), len(filters))
	}
	return &qr, nil
}

// Query is the single-filter convenience over QueryAll.
func (c *Client) Query(filter QueryFilter) (QueryEstimate, error) {
	qr, err := c.QueryAll([]QueryFilter{filter})
	if err != nil {
		return QueryEstimate{}, err
	}
	return qr.Estimates[0], nil
}

// Replicate pulls one counter delta from the server — the client side
// of GET /v1/replicate. since is the stream position a previous pull's
// ToVersion reported (0 for first contact) and gen the counter
// generation it was reported under; the server falls back to a full
// delta whenever the pair no longer chains. Mostly used by federation
// coordinators (internal/federation); exposed here so external tooling
// can mirror a site's privacy-safe counts too.
func (c *Client) Replicate(since, gen uint64) (*mining.CounterDelta, error) {
	resp, err := c.http.Get(fmt.Sprintf("%s/v1/replicate?since=%d&gen=%d", c.base, since, gen))
	if err != nil {
		return nil, err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: replicate returned %s", ErrService, resp.Status)
	}
	var d mining.CounterDelta
	if err := gob.NewDecoder(io.LimitReader(resp.Body, mining.MaxDeltaWireBytes)).Decode(&d); err != nil {
		return nil, fmt.Errorf("%w: bad replicate payload: %v", ErrService, err)
	}
	return &d, nil
}

// FederationStats queries the federation health block of /v1/stats —
// per-peer sync state, lag, and the global version vector. Errors when
// the server is not a federation coordinator.
func (c *Client) FederationStats() (*federation.Stats, error) {
	sr, err := c.Stats()
	if err != nil {
		return nil, err
	}
	if sr.Federation == nil {
		return nil, fmt.Errorf("%w: server is not a federation coordinator", ErrService)
	}
	return sr.Federation, nil
}

// Stats queries the collection state.
func (c *Client) Stats() (*StatsResponse, error) {
	resp, err := c.http.Get(c.base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: stats returned %s", ErrService, resp.Status)
	}
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("%w: bad stats response: %v", ErrService, err)
	}
	return &sr, nil
}

func (c *Client) encodeRecord(rec dataset.Record) RecordJSON {
	out := make(RecordJSON, len(rec))
	for j, v := range rec {
		a := c.schema.Attrs[j]
		out[a.Name] = a.Categories[v]
	}
	return out
}

// encodeBoolRecord renders a perturbed boolean row as attribute →
// asserted-category lists; attributes with no asserted bits are omitted.
func (c *Client) encodeBoolRecord(m *core.BoolMapping, row uint64) BoolRecordJSON {
	out := make(BoolRecordJSON)
	for j, a := range c.schema.Attrs {
		var cats []string
		for v := 0; v < a.Cardinality(); v++ {
			if row&(1<<uint(m.Offsets[j]+v)) != 0 {
				cats = append(cats, a.Categories[v])
			}
		}
		if len(cats) > 0 {
			out[a.Name] = cats
		}
	}
	return out
}

func drain(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}
