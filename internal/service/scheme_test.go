package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/mining"
	"repro/internal/query"
)

// End-to-end scheme negotiation: frapp-server -scheme mask (and
// cutpaste) must serve submit/query/mine/mine-jobs/replicate through
// the whole stack, with /v1/query estimates matching the scheme's
// OFFLINE counter to 1e-9, and federation merging same-scheme sites
// only.

// schemeCase drives one scheme through the HTTP stack: generate
// original records, perturb them exactly as the client library would
// (same mechanism, same seeded stream), and build the scheme's offline
// counter over the identical perturbed data.
type schemeCase struct {
	name string
	// offline builds the paper's record-scan counter over the perturbed
	// stream that a client with this seed would have submitted.
	offline func(t *testing.T, schema *dataset.Schema, gamma float64, db *dataset.Database, seed int64) mining.SupportCounter
}

func schemeCases() []schemeCase {
	return []schemeCase{
		{
			name: mining.SchemeGamma,
			offline: func(t *testing.T, schema *dataset.Schema, gamma float64, db *dataset.Database, seed int64) mining.SupportCounter {
				m, err := core.NewGammaDiagonal(schema.DomainSize(), gamma)
				if err != nil {
					t.Fatal(err)
				}
				p, err := core.NewGammaPerturber(schema, m)
				if err != nil {
					t.Fatal(err)
				}
				pdb, err := core.PerturbDatabase(db, p, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				c, err := mining.NewGammaCounter(pdb, m)
				if err != nil {
					t.Fatal(err)
				}
				return c
			},
		},
		{
			name: mining.SchemeMask,
			offline: func(t *testing.T, schema *dataset.Schema, gamma float64, db *dataset.Database, seed int64) mining.SupportCounter {
				bm, err := core.NewBoolMapping(schema)
				if err != nil {
					t.Fatal(err)
				}
				ms, err := core.NewMaskSchemeForPrivacy(bm, gamma)
				if err != nil {
					t.Fatal(err)
				}
				bdb, err := ms.PerturbDatabase(db, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				return &mining.MaskCounter{Perturbed: bdb, Scheme: ms}
			},
		},
		{
			name: mining.SchemeCutPaste,
			offline: func(t *testing.T, schema *dataset.Schema, gamma float64, db *dataset.Database, seed int64) mining.SupportCounter {
				bm, err := core.NewBoolMapping(schema)
				if err != nil {
					t.Fatal(err)
				}
				rho, err := core.FindRhoForGamma(bm, 3, gamma, 0.494)
				if err != nil {
					t.Fatal(err)
				}
				cs, err := core.NewCutPasteScheme(bm, 3, rho)
				if err != nil {
					t.Fatal(err)
				}
				bdb, err := cs.PerturbDatabase(db, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				return &mining.CutPasteCounter{Perturbed: bdb, Scheme: cs}
			},
		},
	}
}

// randomDB draws n uniform records over the service schema.
func randomDB(t *testing.T, schema *dataset.Schema, n int, seed int64) *dataset.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := dataset.NewDatabase(schema, n)
	for i := 0; i < n; i++ {
		rec := make(dataset.Record, schema.M())
		for j, a := range schema.Attrs {
			rec[j] = rng.Intn(a.Cardinality())
		}
		db.Records = append(db.Records, rec)
	}
	return db
}

// TestSchemeEndToEnd is the acceptance run for every scheme: a server
// under -scheme X serves submit, query, mine, mine-jobs, and replicate,
// with /v1/query estimates matching X's offline counter to 1e-9 and the
// mined model matching Apriori over the same offline counter.
func TestSchemeEndToEnd(t *testing.T) {
	for _, tc := range schemeCases() {
		t.Run(tc.name, func(t *testing.T) {
			const (
				seed    = 7331
				records = 1200
			)
			srv, ts := startServer(t, WithScheme(tc.name), WithShards(3))
			if srv.Scheme() != tc.name {
				t.Fatalf("server scheme %q, want %q", srv.Scheme(), tc.name)
			}

			// The client validates the advertised contract at NewClient
			// time and negotiates the scheme.
			client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
			if err != nil {
				t.Fatal(err)
			}
			if client.Scheme() != tc.name {
				t.Fatalf("client negotiated %q, want %q", client.Scheme(), tc.name)
			}

			// Submit through the library: one single submit, the rest
			// batched, all driven by one seeded stream.
			schema := srv.PublishedSchema()
			db := randomDB(t, schema, records, 42)
			rng := rand.New(rand.NewSource(seed))
			if err := client.Submit(db.Records[0], rng); err != nil {
				t.Fatal(err)
			}
			if err := client.SubmitBatch(db.Records[1:], rng); err != nil {
				t.Fatal(err)
			}
			if srv.N() != records {
				t.Fatalf("server holds %d records, want %d", srv.N(), records)
			}

			// The offline counter over the IDENTICAL perturbed stream.
			offline := tc.offline(t, schema, client.Gamma(), db, seed)

			// Stats advertise the scheme.
			stats, err := client.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if stats.Scheme != tc.name {
				t.Fatalf("stats scheme %q, want %q", stats.Scheme, tc.name)
			}
			if stats.ConditionNumber <= 0 {
				t.Fatalf("stats condition number %v", stats.ConditionNumber)
			}

			// /v1/query estimates must match the offline counter to 1e-9.
			filters := []QueryFilter{
				{},
				{"a": "a1"},
				{"b": "b0"},
				{"a": "a2", "c": "c3"},
				{"a": "a0", "b": "b1", "c": "c0"},
			}
			sets := make([]mining.Itemset, len(filters))
			for i, f := range filters {
				items := make([]mining.Item, 0, len(f))
				for name, cat := range f {
					j := srv.attrIndex(name)
					items = append(items, mining.Item{Attr: j, Value: schema.Attrs[j].CategoryIndex(cat)})
				}
				set, err := mining.NewItemset(items...)
				if err != nil {
					t.Fatal(err)
				}
				sets[i] = set
			}
			want, err := offline.Supports(sets)
			if err != nil {
				t.Fatal(err)
			}
			qr, err := client.QueryAll(filters)
			if err != nil {
				t.Fatal(err)
			}
			if qr.Records != records {
				t.Fatalf("query records %d, want %d", qr.Records, records)
			}
			for i := range filters {
				if math.Abs(qr.Estimates[i].Count-want[i]) > 1e-9 {
					t.Errorf("filter %d: live estimate %v, offline %v", i, qr.Estimates[i].Count, want[i])
				}
				if len(sets[i]) > 0 && qr.Estimates[i].StdErr <= 0 {
					t.Errorf("filter %d: stderr %v, want > 0", i, qr.Estimates[i].StdErr)
				}
				if qr.Estimates[i].Lo > qr.Estimates[i].Count || qr.Estimates[i].Hi < qr.Estimates[i].Count {
					t.Errorf("filter %d: interval [%v,%v] excludes %v", i, qr.Estimates[i].Lo, qr.Estimates[i].Hi, qr.Estimates[i].Count)
				}
			}

			// Synchronous mining serves the scheme's reconstruction; the
			// model must match Apriori over the offline counter exactly
			// (identical estimator arithmetic over identical counts).
			const minsup = 0.05
			mined, err := client.Mine(minsup, 0, 10000)
			if err != nil {
				t.Fatal(err)
			}
			wantModel, err := mining.Apriori(offline, minsup)
			if err != nil {
				t.Fatal(err)
			}
			wantAll := wantModel.All()
			got := 0
			for _, is := range mined.Itemsets {
				got++
				items := make([]mining.Item, 0, len(is.Items))
				for name, cat := range is.Items {
					j := srv.attrIndex(name)
					items = append(items, mining.Item{Attr: j, Value: schema.Attrs[j].CategoryIndex(cat)})
				}
				set, err := mining.NewItemset(items...)
				if err != nil {
					t.Fatal(err)
				}
				fi, ok := wantAll[set.Key()]
				if !ok {
					t.Errorf("mined itemset %s not frequent offline", set.Key())
					continue
				}
				if math.Abs(fi.Support-is.Support) > 1e-9 {
					t.Errorf("%s: mined support %v, offline %v", set.Key(), is.Support, fi.Support)
				}
			}
			if got != len(wantAll) {
				t.Errorf("mined %d itemsets, offline model has %d", got, len(wantAll))
			}

			// Async jobs run through the same pool and cache.
			job, err := client.MineAsync(context.Background(), MineParams{MinSupport: minsup, Limit: 10000})
			if err != nil {
				t.Fatal(err)
			}
			if job.Records != records {
				t.Fatalf("job mined %d records, want %d", job.Records, records)
			}
			if !job.Cached {
				t.Error("async job after identical sync mine was not served from cache")
			}

			// Replication: a full delta pulled over HTTP rebuilds the
			// counter state on a fresh same-scheme core.
			d, err := client.Replicate(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !d.Full() || d.Records != records {
				t.Fatalf("full delta carries %d records (full=%v), want %d", d.Records, d.Full(), records)
			}
			replica := srv.CounterScheme().NewCore()
			if err := replica.ApplyDelta(d); err != nil {
				t.Fatal(err)
			}
			repSup, err := replica.Supports(sets)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sets {
				if math.Abs(repSup[i]-want[i]) > 1e-9 {
					t.Errorf("replica filter %d: %v, offline %v", i, repSup[i], want[i])
				}
			}

			// The library query engine over the live counter agrees with
			// the HTTP path.
			eng, err := query.NewLiveCounterEngine(srv.ctr())
			if err != nil {
				t.Fatal(err)
			}
			ests, err := eng.CountAll(sets)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sets {
				if math.Abs(ests[i].Count-qr.Estimates[i].Count) > 1e-9 {
					t.Errorf("engine filter %d: %v, HTTP %v", i, ests[i].Count, qr.Estimates[i].Count)
				}
			}
		})
	}
}

// TestSchemaAdvertisesScheme pins the wire form of scheme negotiation.
func TestSchemaAdvertisesScheme(t *testing.T) {
	for _, tc := range schemeCases() {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := startServer(t, WithScheme(tc.name))
			resp, err := ts.Client().Get(ts.URL + "/v1/schema")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var sr SchemaResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				t.Fatal(err)
			}
			if sr.Scheme.Name != tc.name {
				t.Fatalf("advertised scheme %q, want %q", sr.Scheme.Name, tc.name)
			}
			switch tc.name {
			case mining.SchemeMask:
				if !(sr.Scheme.MaskP > 0.5 && sr.Scheme.MaskP < 1) {
					t.Fatalf("advertised mask_p %v outside (0.5,1)", sr.Scheme.MaskP)
				}
			case mining.SchemeCutPaste:
				if sr.Scheme.CutK <= 0 || !(sr.Scheme.CutRho > 0 && sr.Scheme.CutRho < 1) {
					t.Fatalf("advertised C&P params K=%d rho=%v invalid", sr.Scheme.CutK, sr.Scheme.CutRho)
				}
			}
		})
	}
}

// TestClientRejectsContractViolations: the client must refuse to perturb
// under advertised parameters that violate the published gamma bound,
// and must refuse schemes it does not know.
func TestClientRejectsContractViolations(t *testing.T) {
	base := SchemaResponse{
		Name: "svc",
		Attributes: []AttributeJSON{
			{Name: "a", Categories: []string{"a0", "a1", "a2"}},
			{Name: "b", Categories: []string{"b0", "b1"}},
			{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
		},
		Privacy: PrivacyJSON{Rho1: 0.05, Rho2: 0.50},
	}
	serve := func(sr SchemaResponse) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/schema", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, sr)
		})
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}

	// A MASK p far above the privacy-derived value amplifies past gamma.
	weak := base
	weak.Scheme = SchemeJSON{Name: mining.SchemeMask, MaskP: 0.95}
	ts := serve(weak)
	if _, err := NewClient(ts.URL, WithHTTPClient(ts.Client())); !errors.Is(err, ErrService) {
		t.Fatal("client accepted MASK parameters violating the gamma bound")
	}

	// Same for a C&P rho far outside the feasible region.
	weakCP := base
	weakCP.Scheme = SchemeJSON{Name: mining.SchemeCutPaste, CutK: 3, CutRho: 0.02}
	ts = serve(weakCP)
	if _, err := NewClient(ts.URL, WithHTTPClient(ts.Client())); !errors.Is(err, ErrService) {
		t.Fatal("client accepted C&P parameters violating the gamma bound")
	}

	// Unknown schemes are refused outright.
	unknown := base
	unknown.Scheme = SchemeJSON{Name: "rot13"}
	ts = serve(unknown)
	if _, err := NewClient(ts.URL, WithHTTPClient(ts.Client())); !errors.Is(err, ErrService) {
		t.Fatal("client accepted an unknown scheme")
	}

	// Client-side randomization is a gamma extension.
	maskOK := base
	maskOK.Scheme = SchemeJSON{Name: mining.SchemeMask, MaskP: 0.56}
	ts = serve(maskOK)
	if _, err := NewClient(ts.URL, WithHTTPClient(ts.Client()), WithClientRandomization(0.5)); !errors.Is(err, ErrService) {
		t.Fatal("client accepted randomization under a boolean scheme")
	}
}

// TestSchemeStatePersistence: -state round-trips under every scheme,
// and a state file saved under one scheme can never be restored into a
// server running another.
func TestSchemeStatePersistence(t *testing.T) {
	for _, tc := range schemeCases() {
		t.Run(tc.name, func(t *testing.T) {
			srv, ts := startServer(t, WithScheme(tc.name), WithShards(2))
			client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
			if err != nil {
				t.Fatal(err)
			}
			db := randomDB(t, srv.PublishedSchema(), 300, 99)
			if err := client.SubmitBatch(db.Records, rand.New(rand.NewSource(17))); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := srv.SaveState(&buf); err != nil {
				t.Fatal(err)
			}
			raw := buf.Bytes()

			// Restore into a same-scheme server with a different shard
			// count.
			srv2, _ := startServer(t, WithScheme(tc.name), WithShards(5))
			if err := srv2.LoadState(bytes.NewReader(raw)); err != nil {
				t.Fatal(err)
			}
			if srv2.N() != 300 {
				t.Fatalf("restored %d records, want 300", srv2.N())
			}
			if srv2.CounterGeneration() == 0 {
				t.Fatal("state restore did not bump the counter generation")
			}

			// Every OTHER scheme must reject this state file.
			for _, other := range schemeCases() {
				if other.name == tc.name {
					continue
				}
				srv3, _ := startServer(t, WithScheme(other.name))
				if err := srv3.LoadState(bytes.NewReader(raw)); !errors.Is(err, mining.ErrMining) {
					t.Errorf("state saved under %s restored into %s server: %v", tc.name, other.name, err)
				}
			}
		})
	}
}

// TestFederationSchemeContract is the federation acceptance: a
// coordinator syncing two same-scheme sites answers exactly like a
// single site that collected everything, while a mixed-scheme peer is
// rejected — surfaced in /v1/stats — and never merged.
func TestFederationSchemeContract(t *testing.T) {
	for _, tc := range schemeCases() {
		t.Run(tc.name, func(t *testing.T) {
			schema := serviceSchema(t)
			spec := core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}

			newSite := func(scheme string) (*Server, *httptest.Server) {
				srv, err := NewServer(schema, spec, WithScheme(scheme), WithShards(2))
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(srv.Close)
				ts := httptest.NewServer(srv.Handler())
				t.Cleanup(ts.Close)
				return srv, ts
			}

			siteA, tsA := newSite(tc.name)
			siteB, tsB := newSite(tc.name)
			// The union site collects EVERY record — the coordinator's
			// answers must match it exactly.
			union, tsU := newSite(tc.name)

			db := randomDB(t, schema, 600, 5)
			submit := func(ts *httptest.Server, recs []dataset.Record, seed int64) {
				client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
				if err != nil {
					t.Fatal(err)
				}
				if err := client.SubmitBatch(recs, rand.New(rand.NewSource(seed))); err != nil {
					t.Fatal(err)
				}
			}
			// Identical perturbed records reach site A/B and the union
			// site: per-half seeded streams.
			submit(tsA, db.Records[:300], 1001)
			submit(tsB, db.Records[300:], 1002)
			submit(tsU, db.Records[:300], 1001)
			submit(tsU, db.Records[300:], 1002)

			// A third peer runs a DIFFERENT scheme over the same schema.
			mixedScheme := mining.SchemeMask
			if tc.name == mining.SchemeMask {
				mixedScheme = mining.SchemeGamma
			}
			_, tsMixed := newSite(mixedScheme)
			submit(tsMixed, db.Records[:50], 1003)

			coordSrv, err := NewServer(schema, spec, WithScheme(tc.name))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(coordSrv.Close)
			coord, err := federation.NewCoordinator(coordSrv.CounterScheme(),
				[]string{tsA.URL, tsB.URL, tsMixed.URL}, coordSrv.ReplaceCounter,
				federation.WithHTTPClient(tsA.Client()))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(coord.Close)
			if err := coordSrv.EnableFederation(coord); err != nil {
				t.Fatal(err)
			}
			// The mixed-scheme peer fails the pass; the same-scheme sites
			// still merge.
			if err := coord.SyncAll(context.Background()); err == nil {
				t.Fatal("SyncAll reported success despite the mixed-scheme peer")
			}

			st := coord.Stats()
			if st.Scheme != tc.name {
				t.Fatalf("federation stats scheme %q, want %q", st.Scheme, tc.name)
			}
			if st.Records != siteA.N()+siteB.N() {
				t.Fatalf("global records %d, want %d (the mixed-scheme peer must never be merged)",
					st.Records, siteA.N()+siteB.N())
			}
			for _, p := range st.Peers {
				if p.URL == tsMixed.URL {
					if p.Healthy || p.Records != 0 || p.LastError == "" {
						t.Fatalf("mixed-scheme peer not rejected cleanly: %+v", p)
					}
				} else if !p.Healthy {
					t.Fatalf("same-scheme peer unhealthy: %+v", p)
				}
			}

			// Coordinator answers == single-node union, to 1e-9.
			tsCoord := httptest.NewServer(coordSrv.Handler())
			t.Cleanup(tsCoord.Close)
			filters := []QueryFilter{{}, {"a": "a1"}, {"b": "b0", "c": "c2"}, {"a": "a0", "b": "b1", "c": "c3"}}
			coordClient, err := NewClient(tsCoord.URL, WithHTTPClient(tsCoord.Client()))
			if err != nil {
				t.Fatal(err)
			}
			unionClient, err := NewClient(tsU.URL, WithHTTPClient(tsU.Client()))
			if err != nil {
				t.Fatal(err)
			}
			got, err := coordClient.QueryAll(filters)
			if err != nil {
				t.Fatal(err)
			}
			want, err := unionClient.QueryAll(filters)
			if err != nil {
				t.Fatal(err)
			}
			if got.Records != union.N() {
				t.Fatalf("coordinator answers from %d records, union holds %d", got.Records, union.N())
			}
			for i := range filters {
				if math.Abs(got.Estimates[i].Count-want.Estimates[i].Count) > 1e-9 {
					t.Errorf("filter %d: coordinator %v, union %v", i, got.Estimates[i].Count, want.Estimates[i].Count)
				}
			}
		})
	}
}

// TestReplicateRejectsCrossScheme is the satellite regression for the
// scheme-safety gap: a replication payload pulled from a server running
// one scheme must be rejected by every other scheme's counter with a
// clear fingerprint error — even though both run the SAME schema.
func TestReplicateRejectsCrossScheme(t *testing.T) {
	srvMask, tsMask := startServer(t, WithScheme(mining.SchemeMask))
	client, err := NewClient(tsMask.URL, WithHTTPClient(tsMask.Client()))
	if err != nil {
		t.Fatal(err)
	}
	db := randomDB(t, srvMask.PublishedSchema(), 50, 3)
	if err := client.SubmitBatch(db.Records, rand.New(rand.NewSource(4))); err != nil {
		t.Fatal(err)
	}
	d, err := client.Replicate(0, 0)
	if err != nil {
		t.Fatal(err)
	}

	srvGamma, _ := startServer(t, WithScheme(mining.SchemeGamma))
	replica := srvGamma.CounterScheme().NewCore()
	if err := replica.ApplyDelta(d); !errors.Is(err, mining.ErrMining) {
		t.Fatalf("gamma replica accepted a MASK delta: %v", err)
	}
	if replica.N() != 0 {
		t.Fatal("rejected delta mutated the replica")
	}
}

// TestBoolSubmissionRejectsDuplicateAttribute: encoding/json keeps only
// the last of two duplicate object keys, which on the WRITE path would
// silently drop asserted categories — the submission decoder must parse
// token-wise and 400 instead, mirroring the query-filter convention.
func TestBoolSubmissionRejectsDuplicateAttribute(t *testing.T) {
	srv, ts := startServer(t, WithScheme(mining.SchemeMask))
	body := []byte(`{"a":["a0"],"a":["a2"]}`)
	resp, err := ts.Client().Post(ts.URL+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate-attribute submission returned %s, want 400", resp.Status)
	}
	if srv.N() != 0 {
		t.Fatalf("rejected submission was ingested: records=%d", srv.N())
	}
	// Batch path goes through the same decoder.
	resp, err = ts.Client().Post(ts.URL+"/v1/submit-batch", "application/json",
		bytes.NewReader([]byte(`[{"b":["b0"]},{"a":["a0"],"a":["a2"]}]`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || srv.N() != 0 {
		t.Fatalf("duplicate-attribute batch returned %s with %d records, want 400 and 0", resp.Status, srv.N())
	}
}
