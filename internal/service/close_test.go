package service

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// TestJobStoreCloseFailsQueuedJobsTerminally is the shutdown-audit
// regression for the job pool: close must (1) fail every still-queued
// job terminally so awaiting clients unblock, (2) be safe to call
// twice, and (3) reject submissions arriving after it.
func TestJobStoreCloseFailsQueuedJobsTerminally(t *testing.T) {
	running := make(chan struct{}, 1)
	var st *jobStore
	st = newJobStore(1, time.Minute, func(MineParams) (*MineResponse, uint64, bool, error) {
		select { // non-blocking: the exiting worker may run several jobs
		case running <- struct{}{}:
		default:
		}
		<-st.quit // block the worker until close() begins
		return &MineResponse{}, 1, false, nil
	})

	p := MineParams{MinSupport: 0.1, Limit: 10}
	jobs := make([]*job, 0, 65)
	j1, err := st.submit(p)
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, j1)
	<-running // the single worker is now blocked inside j1
	// Queue far more jobs than the exiting worker could plausibly drain
	// (each quit/queue select is a coin flip, so 64 queued jobs reach
	// the close-side drain with probability 1 − 2⁻⁶⁴).
	for i := 0; i < 64; i++ {
		j, err := st.submit(p)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	closed := make(chan struct{})
	go func() {
		st.close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("close did not return")
	}

	// Every job must be terminal — done (the worker got to it) or
	// failed with the server-closed error (the drain got to it) — and
	// with a blocked single worker, at least one must have been drained.
	drained := 0
	for i, j := range jobs {
		select {
		case <-j.done:
		default:
			t.Fatalf("job %d not terminal after close", i)
		}
		st.mu.Lock()
		state, jerr := j.state, j.err
		st.mu.Unlock()
		switch state {
		case JobDone:
		case JobFailed:
			if !errors.Is(jerr, errServerClosed) {
				t.Fatalf("job %d failed with %v, want server-closed", i, jerr)
			}
			drained++
		default:
			t.Fatalf("job %d state %q after close", i, state)
		}
	}
	if drained == 0 {
		t.Fatal("no queued job was failed terminally by close")
	}

	// Idempotent: a second close is a no-op, not a double-close panic.
	st.close()

	// Post-close submissions are rejected outright.
	if _, err := st.submit(p); !errors.Is(err, errServerClosed) {
		t.Fatalf("post-close submit error %v, want server-closed", err)
	}
}

// TestServerCloseIdempotent covers the public surface: double Close on
// a live server (the path cmd/frapp-server's defer takes after an
// explicit shutdown) must be safe.
func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer(serviceSchema(t), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close()
}
