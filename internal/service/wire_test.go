package service

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
)

// Binary wire form suite: JSON/binary equivalence per scheme, the
// fingerprint gate, request-size limits, over-HTTP batch atomicity,
// pooled-decode allocation bounds, and decoder fuzzing.

// wireSchema is serviceSchema for testing.TB callers (fuzz targets).
func wireSchema(tb testing.TB) *dataset.Schema {
	tb.Helper()
	s, err := dataset.NewSchema("svc", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// wireRecords synthesizes deterministic unperturbed records.
func wireRecords(schema *dataset.Schema, n int, seed int64) []dataset.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]dataset.Record, n)
	for i := range recs {
		rec := make(dataset.Record, schema.M())
		for j, a := range schema.Attrs {
			rec[j] = rng.Intn(a.Cardinality())
		}
		recs[i] = rec
	}
	return recs
}

// wireProbes is a deterministic spread of count filters at arity 0..2.
func wireProbes(schema *dataset.Schema) []mining.Itemset {
	sets := []mining.Itemset{{}}
	for a, attr := range schema.Attrs {
		for v := 0; v < attr.Cardinality(); v++ {
			sets = append(sets, mining.Itemset{{Attr: a, Value: v}})
		}
	}
	sets = append(sets, mining.Itemset{{Attr: 0, Value: 1}, {Attr: 2, Value: 3}})
	return sets
}

func wireClient(t *testing.T, ts *httptest.Server) *Client {
	t.Helper()
	client, err := NewClient(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// TestBatchWireEquivalence: for every scheme, the same records prepared
// from identically seeded rngs in JSON and binary form must land two
// servers in bit-identical counter states — same count, same version,
// same perturbed supports. Also pins that the client's locally derived
// fingerprint matches the server contract, and that the binary body is
// actually smaller.
func TestBatchWireEquivalence(t *testing.T) {
	for _, scheme := range mining.SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			srvJSON, tsJSON := startServer(t, WithScheme(scheme), WithShards(3))
			srvBin, tsBin := startServer(t, WithScheme(scheme), WithShards(3))
			cJSON := wireClient(t, tsJSON)
			cBin := wireClient(t, tsBin)
			if got, want := cBin.Fingerprint(), srvBin.CounterScheme().Fingerprint(); got != want {
				t.Fatalf("client fingerprint %q, server contract %q", got, want)
			}
			recs := wireRecords(srvJSON.schema, 400, 301)
			var jsonBytes, binBytes int
			for lo := 0; lo < len(recs); lo += 50 {
				chunk := recs[lo : lo+50]
				// Identically seeded rngs draw identical perturbations, so
				// both servers ingest the same perturbed records.
				pJSON, err := cJSON.PrepareBatchWire(chunk, rand.New(rand.NewSource(int64(lo))), WireJSON)
				if err != nil {
					t.Fatal(err)
				}
				pBin, err := cBin.PrepareBatchWire(chunk, rand.New(rand.NewSource(int64(lo))), WireBinary)
				if err != nil {
					t.Fatal(err)
				}
				jsonBytes += pJSON.WireSize()
				binBytes += pBin.WireSize()
				if err := cJSON.SubmitPrepared(pJSON); err != nil {
					t.Fatal(err)
				}
				if err := cBin.SubmitPrepared(pBin); err != nil {
					t.Fatal(err)
				}
			}
			if srvJSON.N() != len(recs) || srvBin.N() != len(recs) {
				t.Fatalf("record counts: json server %d, binary server %d, want %d", srvJSON.N(), srvBin.N(), len(recs))
			}
			if srvJSON.SnapshotVersion() != srvBin.SnapshotVersion() {
				t.Fatalf("versions: json %d, binary %d", srvJSON.SnapshotVersion(), srvBin.SnapshotVersion())
			}
			probes := wireProbes(srvJSON.schema)
			supJSON, _, err := srvJSON.ctr().PerturbedSupports(probes)
			if err != nil {
				t.Fatal(err)
			}
			supBin, _, err := srvBin.ctr().PerturbedSupports(probes)
			if err != nil {
				t.Fatal(err)
			}
			for i := range probes {
				if supJSON[i] != supBin[i] {
					t.Errorf("probe %d: json support %g, binary support %g", i, supJSON[i], supBin[i])
				}
			}
			if binBytes >= jsonBytes {
				t.Errorf("binary wire %d bytes not smaller than JSON %d bytes", binBytes, jsonBytes)
			}
		})
	}
}

// postBinary sends raw bytes as a binary batch with the given
// fingerprint header ("" = omit).
func postBinary(t *testing.T, ts *httptest.Server, fp string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/submit-batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", BatchContentTypeBinary)
	if fp != "" {
		req.Header.Set(FingerprintHeader, fp)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drain(resp.Body)
	return resp.StatusCode
}

// TestBinaryBatchFingerprintGate: a binary submission without the
// fingerprint header, or with a foreign fingerprint, is a 400 — and
// nothing is counted.
func TestBinaryBatchFingerprintGate(t *testing.T) {
	srv, ts := startServer(t, WithShards(2))
	client := wireClient(t, ts)
	p, err := client.PrepareBatchWire(wireRecords(srv.schema, 10, 311), rand.New(rand.NewSource(311)), WireBinary)
	if err != nil {
		t.Fatal(err)
	}
	if code := postBinary(t, ts, "", p.Body()); code != http.StatusBadRequest {
		t.Errorf("missing fingerprint returned %d, want 400", code)
	}
	if code := postBinary(t, ts, "not-the-contract", p.Body()); code != http.StatusBadRequest {
		t.Errorf("foreign fingerprint returned %d, want 400", code)
	}
	if srv.N() != 0 {
		t.Fatalf("rejected submissions counted: N=%d", srv.N())
	}
	if code := postBinary(t, ts, p.Fingerprint(), p.Body()); code != http.StatusAccepted {
		t.Errorf("matching fingerprint returned %d, want 202", code)
	}
	if srv.N() != 10 {
		t.Fatalf("accepted batch counted %d records, want 10", srv.N())
	}
	// An empty batch is a no-op 202, same as the JSON form's [].
	if code := postBinary(t, ts, p.Fingerprint(), appendBinaryBatch(nil, nil)); code != http.StatusAccepted {
		t.Errorf("empty binary batch returned %d, want 202", code)
	}
	if srv.N() != 10 {
		t.Fatalf("empty batch changed the count to %d", srv.N())
	}
}

// TestMaxBodyLimits: every decoding POST endpoint answers 413 once the
// body exceeds the configured cap, and normal-size requests pass.
func TestMaxBodyLimits(t *testing.T) {
	srv, ts := startServer(t, WithMaxBody(512))
	// A valid JSON prefix long enough to trip the limit mid-decode on
	// every endpoint (an object whose first key never ends).
	big := `{"` + strings.Repeat("a", 2048)
	for _, ep := range []string{"/v1/submit", "/v1/submit-batch", "/v1/query", "/v1/mine-jobs"} {
		resp, err := ts.Client().Post(ts.URL+ep, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		drain(resp.Body)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s with %d-byte body returned %d, want 413", ep, len(big), resp.StatusCode)
		}
	}
	// Binary path: an oversized body trips the same limit.
	fp := srv.CounterScheme().Fingerprint()
	if code := postBinary(t, ts, fp, append([]byte(batchMagic), bytes.Repeat([]byte{1}, 2048)...)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized binary batch returned %d, want 413", code)
	}
	// A normal submission still fits.
	resp, err := ts.Client().Post(ts.URL+"/v1/submit", "application/json", strings.NewReader(`{"a":"a0","b":"b1","c":"c2"}`))
	if err != nil {
		t.Fatal(err)
	}
	drain(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("normal submit under the limit returned %d, want 202", resp.StatusCode)
	}
}

// TestBatchAtomicityOverHTTP is the end-to-end regression test for the
// partial-ingest bug: a batch whose middle record passes wire decode
// but fails counter validation must be a 400 with record count,
// snapshot version, and every support untouched — for both wire forms,
// for every scheme.
func TestBatchAtomicityOverHTTP(t *testing.T) {
	for _, scheme := range mining.SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			srv, ts := startServer(t, WithScheme(scheme), WithShards(3))
			client := wireClient(t, ts)
			recs := wireRecords(srv.schema, 60, 321)
			p, err := client.PrepareBatchWire(recs[:30], rand.New(rand.NewSource(321)), WireBinary)
			if err != nil {
				t.Fatal(err)
			}
			if err := client.SubmitPrepared(p); err != nil {
				t.Fatal(err)
			}
			probes := wireProbes(srv.schema)
			wantN, wantVer := srv.N(), srv.SnapshotVersion()
			wantSup, _, err := srv.ctr().PerturbedSupports(probes)
			if err != nil {
				t.Fatal(err)
			}
			checkUnchanged := func(t *testing.T, what string) {
				t.Helper()
				if got := srv.N(); got != wantN {
					t.Errorf("%s: N=%d, want %d", what, got, wantN)
				}
				if got := srv.SnapshotVersion(); got != wantVer {
					t.Errorf("%s: version=%d, want %d", what, got, wantVer)
				}
				gotSup, _, err := srv.ctr().PerturbedSupports(probes)
				if err != nil {
					t.Fatal(err)
				}
				for i := range probes {
					if gotSup[i] != wantSup[i] {
						t.Errorf("%s: probe %d support %g, want %g", what, i, gotSup[i], wantSup[i])
					}
				}
			}
			// Binary: wire-decodable records, but record 15 carries a value
			// index no schema attribute has — decode accepts it, the
			// counter's validation pass must reject the whole batch.
			rng := rand.New(rand.NewSource(322))
			records := make([][]mining.Item, len(recs[30:]))
			for i, rec := range recs[30:] {
				items, err := client.perturbItems(rec, rng)
				if err != nil {
					t.Fatal(err)
				}
				records[i] = items
			}
			records[15] = []mining.Item{{Attr: 0, Value: 9999}, {Attr: 1, Value: 0}, {Attr: 2, Value: 0}}
			if code := postBinary(t, ts, client.Fingerprint(), appendBinaryBatch(nil, records)); code != http.StatusBadRequest {
				t.Fatalf("binary batch with invalid record returned %d, want 400", code)
			}
			checkUnchanged(t, "binary mid-batch rejection")
			// JSON: same shape — valid records around one the decoder
			// rejects (unknown category).
			var batch []json.RawMessage
			rng = rand.New(rand.NewSource(323))
			for _, rec := range recs[30:] {
				wire, err := client.perturbWire(rec, rng)
				if err != nil {
					t.Fatal(err)
				}
				raw, err := json.Marshal(wire)
				if err != nil {
					t.Fatal(err)
				}
				batch = append(batch, raw)
			}
			if scheme == mining.SchemeGamma {
				batch[15] = json.RawMessage(`{"a":"nope","b":"b0","c":"c0"}`)
			} else {
				batch[15] = json.RawMessage(`{"a":["nope"]}`)
			}
			body, err := json.Marshal(batch)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Post(ts.URL+"/v1/submit-batch", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			drain(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("JSON batch with invalid record returned %d, want 400", resp.StatusCode)
			}
			checkUnchanged(t, "JSON mid-batch rejection")
		})
	}
}

// TestBinaryDecodeAllocs: the pooled decode path must allocate O(1)
// per batch in steady state, independent of the 256 records decoded.
func TestBinaryDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector bookkeeping allocates; alloc counts are meaningless under -race")
	}
	schema := wireSchema(t)
	recs := wireRecords(schema, 256, 331)
	records := make([][]mining.Item, len(recs))
	for i, rec := range recs {
		items := make([]mining.Item, len(rec))
		for j, v := range rec {
			items[j] = mining.Item{Attr: j, Value: v}
		}
		records[i] = items
	}
	body := appendBinaryBatch(nil, records)
	rd := bytes.NewReader(body)
	// Warm the pooled scratch to its steady-state capacity.
	for i := 0; i < 4; i++ {
		sc := batchPool.Get().(*batchScratch)
		rd.Reset(body)
		if _, err := sc.decode(rd); err != nil {
			t.Fatal(err)
		}
		sc.release()
	}
	allocs := testing.AllocsPerRun(100, func() {
		sc := batchPool.Get().(*batchScratch)
		rd.Reset(body)
		if _, err := sc.decode(rd); err != nil {
			t.Fatal(err)
		}
		sc.release()
	})
	if allocs > 2 {
		t.Errorf("pooled decode of %d records: %.1f allocs/batch, want <= 2", len(records), allocs)
	}
}

// FuzzSubmitBatchBinary: arbitrary bytes through the binary submit
// path must answer 202, 400, or 413 — never panic, never another
// status.
func FuzzSubmitBatchBinary(f *testing.F) {
	schema := wireSchema(f)
	srv, err := NewServer(schema, core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, WithShards(2), WithMaxBody(1<<16))
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	handler := srv.Handler()
	fp := srv.CounterScheme().Fingerprint()
	valid := appendBinaryBatch(nil, [][]mining.Item{
		{{Attr: 0, Value: 1}, {Attr: 1, Value: 0}, {Attr: 2, Value: 3}},
		{{Attr: 0, Value: 2}, {Attr: 1, Value: 1}, {Attr: 2, Value: 0}},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(batchMagic))
	f.Add([]byte("FRB1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte("not a batch"))
	f.Add(appendBinaryBatch(nil, nil))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/submit-batch", bytes.NewReader(body))
		req.Header.Set("Content-Type", BatchContentTypeBinary)
		req.Header.Set(FingerprintHeader, fp)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusAccepted, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("binary batch of %d bytes returned %d", len(body), rec.Code)
		}
	})
}
