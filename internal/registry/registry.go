// Package registry hosts many named FRAPP collections inside one
// process — the multi-tenant layer over internal/service. Each
// collection owns a full vertical slice: its schema, privacy contract,
// perturbation scheme, live counter (plain or sliding-window), mining
// job pool, and — when the registry has a base directory — a private
// WAL+checkpoint store under tenants/<name>/. Collections are created,
// inspected, and deleted at runtime through the lifecycle endpoints
// (PUT/GET/DELETE /v1/collections/{name}), every data-plane endpoint is
// reachable path-scoped under /v1/collections/{name}/..., and the
// legacy un-prefixed routes alias a designated default collection so
// single-tenant deployments and clients keep working unchanged.
//
// Isolation is structural, not bookkept: collections share nothing but
// the process, the telemetry registry (where every per-collection
// series carries a `collection` label drawn from the registry's closed,
// capped name vocabulary), and the HTTP listener. Creating, filling, or
// deleting one collection cannot change another's answers — there is no
// cross-collection state to leak through.
//
// Named collections are built asynchronously: PUT returns as soon as
// the spec is validated and recorded, while WAL recovery (arbitrarily
// long after a crash) proceeds in the background. Until a collection's
// build finishes, its data plane answers 503 and the registry's Ready
// reports it — per collection — so /readyz gates traffic exactly as it
// does for the single-tenant server.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/mining"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// ErrRegistry marks every error produced by this package.
var ErrRegistry = errors.New("registry")

// DefaultCollection is the name the legacy un-prefixed routes alias.
const DefaultCollection = "default"

// nameRE is the closed collection-name vocabulary. It doubles as the
// telemetry label contract: every `collection` metric label is a name
// matching this pattern, so the ops plane can never carry record
// vocabulary no matter what a client PUTs.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`)

// ValidName reports whether name is an acceptable collection name.
// Exposed so tools (frapp-loadgen -collection) can reject bad names
// before a request ever leaves the client.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// manifestFile is the registry's durable spec manifest, next to the
// tenant store directories.
const manifestFile = "collections.json"

// defaultMaxCollections caps concurrently live collections.
const defaultMaxCollections = 32

// SchemaSpec is the wire/manifest form of a schema definition.
type SchemaSpec struct {
	Name  string              `json:"name"`
	Attrs []dataset.Attribute `json:"attrs"`
}

// CollectionSpec declares everything a collection is built from. It is
// the PUT body, the manifest entry, and the rebuild recipe after a
// restart — one JSON value, so identical specs are identical documents.
type CollectionSpec struct {
	Schema *SchemaSpec `json:"schema"`
	// Scheme names the perturbation scheme (gamma, mask, cutpaste);
	// empty means gamma.
	Scheme string  `json:"scheme,omitempty"`
	Rho1   float64 `json:"rho1"`
	Rho2   float64 `json:"rho2"`
	// Shards stripes the ingestion counter; 0 means one per core.
	Shards int `json:"shards,omitempty"`
	// MineWorkers bounds concurrent mining jobs; 0 means the default.
	MineWorkers int `json:"mine_workers,omitempty"`
	// WindowBuckets/WindowBucket, when set, make the collection a
	// sliding window: a ring of WindowBuckets sub-counters each covering
	// WindowBucket (a Go duration string) of wall-clock time. Windowed
	// collections are in-memory only — no store, no federation — and
	// serve the `window` parameter on /v1/query and mining jobs.
	WindowBuckets int    `json:"window_buckets,omitempty"`
	WindowBucket  string `json:"window_bucket,omitempty"`
	// Peers, when set, make the collection a federation coordinator
	// pulling from the listed collector base URLs; it then has no store
	// of its own (the peers own the durable state) and refuses direct
	// submissions, exactly like a -peers frapp-server.
	Peers []string `json:"peers,omitempty"`
	// SyncInterval is the coordinator pull interval (a Go duration
	// string); empty means the federation default.
	SyncInterval string `json:"sync_interval,omitempty"`
}

// schema builds and validates the runtime schema.
func (s *CollectionSpec) schema() (*dataset.Schema, error) {
	if s.Schema == nil {
		return nil, fmt.Errorf("%w: spec has no schema", ErrRegistry)
	}
	sc, err := dataset.NewSchema(s.Schema.Name, s.Schema.Attrs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRegistry, err)
	}
	return sc, nil
}

// windowed reports whether the spec declares a sliding window.
func (s *CollectionSpec) windowed() bool {
	return s.WindowBuckets != 0 || s.WindowBucket != ""
}

// normalize validates the spec and rewrites it into canonical form so
// that equality of meaning is equality of JSON documents: the scheme
// default is filled in, duration strings are re-rendered ("60s" and
// "1m" become the same spec), and every cross-field constraint is
// checked here — synchronously at PUT time — rather than surfacing
// later from the background build.
func (s *CollectionSpec) normalize() error {
	schema, err := s.schema()
	if err != nil {
		return err
	}
	if s.Scheme == "" {
		s.Scheme = "gamma"
	}
	spec := core.PrivacySpec{Rho1: s.Rho1, Rho2: s.Rho2}
	gamma, err := spec.Gamma()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRegistry, err)
	}
	if _, err := mining.SchemeForContract(s.Scheme, schema, gamma); err != nil {
		return fmt.Errorf("%w: %v", ErrRegistry, err)
	}
	if s.Shards < 0 {
		return fmt.Errorf("%w: negative shards %d", ErrRegistry, s.Shards)
	}
	if s.MineWorkers < 0 {
		return fmt.Errorf("%w: negative mine_workers %d", ErrRegistry, s.MineWorkers)
	}
	if s.windowed() {
		if s.WindowBuckets < 1 {
			return fmt.Errorf("%w: window_bucket set without window_buckets >= 1", ErrRegistry)
		}
		d, err := time.ParseDuration(s.WindowBucket)
		if err != nil || d <= 0 {
			return fmt.Errorf("%w: bad window_bucket %q (want a positive Go duration)", ErrRegistry, s.WindowBucket)
		}
		s.WindowBucket = d.String()
		if len(s.Peers) > 0 {
			return fmt.Errorf("%w: a windowed collection cannot federate (expiry cannot be replicated)", ErrRegistry)
		}
	}
	if s.SyncInterval != "" {
		if len(s.Peers) == 0 {
			return fmt.Errorf("%w: sync_interval without peers", ErrRegistry)
		}
		d, err := time.ParseDuration(s.SyncInterval)
		if err != nil || d <= 0 {
			return fmt.Errorf("%w: bad sync_interval %q", ErrRegistry, s.SyncInterval)
		}
		s.SyncInterval = d.String()
	}
	for _, p := range s.Peers {
		if strings.TrimSpace(p) == "" {
			return fmt.Errorf("%w: empty peer URL", ErrRegistry)
		}
	}
	return nil
}

// key returns the canonical JSON document of a normalized spec — the
// idempotence token of PUT.
func (s *CollectionSpec) key() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Unreachable: the spec is plain data.
		panic("registry: spec marshal: " + err.Error())
	}
	return string(b)
}

// Collection is one live tenant: a spec plus the server built from it.
// srv, coord, and err are written exactly once, before ready closes.
type Collection struct {
	name    string
	spec    CollectionSpec
	adopted bool

	ready chan struct{}
	srv   *service.Server
	coord *federation.Coordinator
	err   error
}

// Name returns the collection's registry name.
func (c *Collection) Name() string { return c.name }

// Spec returns the collection's normalized spec.
func (c *Collection) Spec() CollectionSpec { return c.spec }

// Adopted reports whether the collection was installed by Adopt (its
// lifecycle is owned by the caller, not the registry).
func (c *Collection) Adopted() bool { return c.adopted }

// Ready reports the collection's build outcome without blocking:
// nil once built, the build error if it failed, or a "still
// recovering" error while the background build runs.
func (c *Collection) Ready() error {
	select {
	case <-c.ready:
		return c.err
	default:
		return fmt.Errorf("%w: collection %q is still recovering", ErrRegistry, c.name)
	}
}

// Server returns the collection's server once ready; it blocks-free
// errors while the build is still running or after it failed.
func (c *Collection) Server() (*service.Server, error) {
	if err := c.Ready(); err != nil {
		return nil, err
	}
	return c.srv, nil
}

// AwaitReady blocks until the build finishes and returns its outcome.
func (c *Collection) AwaitReady() error {
	<-c.ready
	return c.err
}

// close shuts the collection down: the federation loop first (so the
// counter stops moving), then a best-effort final checkpoint, then the
// server (which owns and closes its store).
func (c *Collection) close() {
	<-c.ready
	if c.coord != nil {
		c.coord.Close()
	}
	if c.srv != nil {
		_ = c.srv.CheckpointNow()
		c.srv.Close()
	}
}

// Options configure a Registry.
type Options struct {
	// BaseDir, when set, makes named collections durable: each gets a
	// WAL+checkpoint store under BaseDir/tenants/<name>/, and the spec
	// manifest BaseDir/collections.json rebuilds them at next start.
	// Empty means a memory-only registry.
	BaseDir string
	// MaxCollections caps concurrently live collections (and, at 4x,
	// the lifetime `collection` telemetry label vocabulary). 0 means 32.
	MaxCollections int
	// Metrics, when set, instruments every collection's server under
	// its `collection` label.
	Metrics *telemetry.Registry
	// AccessLog, when set, is shared by every collection's server; each
	// line carries the collection name.
	AccessLog *telemetry.Logger
	// SyncMode is the WAL fsync policy of tenant stores.
	SyncMode store.SyncMode
}

// Registry is a concurrent set of named collections.
type Registry struct {
	baseDir string
	maxCols int
	metrics *telemetry.Registry
	access  *telemetry.Logger
	sync    store.SyncMode

	mu          sync.Mutex
	collections map[string]*Collection
	// everNamed is the lifetime name vocabulary: telemetry series
	// outlive their collection (deliberately — a re-created name reuses
	// its series), so the label cardinality bound must survive churn.
	everNamed map[string]bool
	closed    bool

	// buildDelay, when non-nil, runs at the head of every background
	// build — the test seam for driving slow-recovery readiness.
	buildDelay func(name string)
}

// New builds a registry and, when BaseDir holds a manifest from a
// previous run, starts rebuilding every recorded collection in the
// background. The call returns immediately; gate traffic on Ready.
func New(o Options) (*Registry, error) {
	if o.MaxCollections <= 0 {
		o.MaxCollections = defaultMaxCollections
	}
	r := &Registry{
		baseDir:     o.BaseDir,
		maxCols:     o.MaxCollections,
		metrics:     o.Metrics,
		access:      o.AccessLog,
		sync:        o.SyncMode,
		collections: make(map[string]*Collection),
		everNamed:   make(map[string]bool),
	}
	if r.baseDir != "" {
		if err := os.MkdirAll(r.baseDir, 0o755); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRegistry, err)
		}
		specs, err := r.loadManifest()
		if err != nil {
			return nil, err
		}
		for name, spec := range specs {
			col := &Collection{name: name, spec: spec, ready: make(chan struct{})}
			r.collections[name] = col
			r.everNamed[name] = true
			go r.build(col)
		}
	}
	return r, nil
}

// Adopt installs an externally built, already-recovered server as the
// named collection — how frapp-server mounts its flag-configured
// default so the legacy routes keep serving it. The caller keeps
// ownership: the registry never closes an adopted server, and Delete
// refuses it.
func (r *Registry) Adopt(name string, srv *service.Server) (*Collection, error) {
	if srv == nil {
		return nil, fmt.Errorf("%w: nil server", ErrRegistry)
	}
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("%w: bad collection name %q", ErrRegistry, name)
	}
	schema := srv.PublishedSchema()
	spec := CollectionSpec{
		Schema: &SchemaSpec{Name: schema.Name, Attrs: schema.Attrs},
		Scheme: srv.Scheme(),
		Shards: srv.Shards(),
	}
	col := &Collection{name: name, spec: spec, adopted: true, ready: make(chan struct{}), srv: srv}
	close(col.ready)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("%w: registry is closed", ErrRegistry)
	}
	if _, ok := r.collections[name]; ok {
		return nil, fmt.Errorf("%w: collection %q already exists", ErrRegistry, name)
	}
	r.collections[name] = col
	r.everNamed[name] = true
	return col, nil
}

// Create registers a new named collection and starts building it in
// the background. It is idempotent: re-PUTting an identical spec
// returns the existing collection (created=false); a different spec
// under a live name is a conflict, never an overwrite.
func (r *Registry) Create(name string, spec CollectionSpec) (col *Collection, created bool, err error) {
	if !nameRE.MatchString(name) {
		return nil, false, fmt.Errorf("%w: bad collection name %q (want %s)", ErrRegistry, name, nameRE)
	}
	if err := spec.normalize(); err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, false, fmt.Errorf("%w: registry is closed", ErrRegistry)
	}
	if existing, ok := r.collections[name]; ok {
		if existing.adopted {
			return nil, false, fmt.Errorf("%w: collection %q is flag-configured; manage it via server flags", ErrRegistry, name)
		}
		if existing.spec.key() == spec.key() {
			return existing, false, nil
		}
		return nil, false, fmt.Errorf("%w: collection %q already exists with a different spec", ErrRegistry, name)
	}
	if len(r.collections) >= r.maxCols {
		return nil, false, fmt.Errorf("%w: collection limit %d reached", ErrRegistry, r.maxCols)
	}
	// The telemetry label vocabulary is append-only across churn; cap it
	// so delete/create cycles cannot grow series without bound.
	if !r.everNamed[name] && len(r.everNamed) >= 4*r.maxCols {
		return nil, false, fmt.Errorf("%w: lifetime collection-name budget %d exhausted (reuse a previous name or restart)", ErrRegistry, 4*r.maxCols)
	}
	col = &Collection{name: name, spec: spec, ready: make(chan struct{})}
	r.collections[name] = col
	r.everNamed[name] = true
	if err := r.persistManifestLocked(); err != nil {
		delete(r.collections, name)
		return nil, false, err
	}
	go r.build(col)
	return col, true, nil
}

// Get returns the named collection.
func (r *Registry) Get(name string) (*Collection, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	col, ok := r.collections[name]
	if !ok {
		return nil, fmt.Errorf("%w: no collection %q", ErrRegistry, name)
	}
	return col, nil
}

// Delete removes a named collection: unregisters it (new requests 404
// immediately), persists the manifest, then shuts the server down and
// removes its tenant store directory. Adopted collections refuse.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	col, ok := r.collections[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: no collection %q", ErrRegistry, name)
	}
	if col.adopted {
		r.mu.Unlock()
		return fmt.Errorf("%w: collection %q is flag-configured and cannot be deleted", ErrRegistry, name)
	}
	delete(r.collections, name)
	err := r.persistManifestLocked()
	if err != nil {
		// Deletion proceeds regardless: the live collection is gone
		// either way, and a stale manifest entry only costs a rebuild of
		// an empty store at next start.
		err = fmt.Errorf("%w: manifest update after delete: %v", ErrRegistry, err)
	}
	r.mu.Unlock()
	// Shutdown happens outside the lock: a build (or WAL recovery) may
	// be in flight, and close waits for it.
	col.close()
	if r.baseDir != "" {
		os.RemoveAll(r.tenantDir(name))
	}
	return err
}

// Names returns the live collection names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.collections))
	for name := range r.collections {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Ready reports aggregate readiness: nil only when every collection's
// build has succeeded, otherwise one error naming each collection that
// is still recovering or failed — the per-collection breakdown /readyz
// serves.
func (r *Registry) Ready() error {
	r.mu.Lock()
	cols := make([]*Collection, 0, len(r.collections))
	for _, c := range r.collections {
		cols = append(cols, c)
	}
	r.mu.Unlock()
	var pending []string
	for _, c := range cols {
		select {
		case <-c.ready:
			if c.err != nil {
				pending = append(pending, fmt.Sprintf("%s: failed: %v", c.name, c.err))
			}
		default:
			pending = append(pending, c.name+": recovering")
		}
	}
	if len(pending) == 0 {
		return nil
	}
	sort.Strings(pending)
	return fmt.Errorf("%w: collections not ready: %s", ErrRegistry, strings.Join(pending, "; "))
}

// AwaitReady blocks until every currently registered collection's
// build finishes, then returns the aggregate outcome.
func (r *Registry) AwaitReady() error {
	r.mu.Lock()
	cols := make([]*Collection, 0, len(r.collections))
	for _, c := range r.collections {
		cols = append(cols, c)
	}
	r.mu.Unlock()
	for _, c := range cols {
		<-c.ready
	}
	return r.Ready()
}

// Close shuts down every non-adopted collection (waiting for in-flight
// builds first) and refuses further lifecycle calls. Adopted servers
// stay open — their owner closes them.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	cols := make([]*Collection, 0, len(r.collections))
	for _, c := range r.collections {
		cols = append(cols, c)
	}
	r.mu.Unlock()
	for _, c := range cols {
		if !c.adopted {
			c.close()
		}
	}
}

// tenantDir is the per-collection store directory.
func (r *Registry) tenantDir(name string) string {
	return filepath.Join(r.baseDir, "tenants", name)
}

// build constructs the collection's server in the background and
// publishes the outcome by closing ready.
func (r *Registry) build(col *Collection) {
	if d := r.buildDelay; d != nil {
		d(col.name)
	}
	col.srv, col.coord, col.err = r.buildCollection(col.name, col.spec)
	close(col.ready)
}

// buildCollection assembles one tenant's full vertical slice from its
// spec: scheme contract, counter (ring or plain), job pool, telemetry
// under the collection label, and — durable, non-windowed,
// non-federated specs only — the tenant store, recovered before the
// server takes traffic.
func (r *Registry) buildCollection(name string, spec CollectionSpec) (*service.Server, *federation.Coordinator, error) {
	schema, err := spec.schema()
	if err != nil {
		return nil, nil, err
	}
	opts := []service.Option{
		service.WithScheme(spec.Scheme),
		service.WithShards(spec.Shards),
		service.WithMineWorkers(spec.MineWorkers),
		service.WithCollectionLabel(name),
	}
	if r.metrics != nil {
		opts = append(opts, service.WithTelemetry(r.metrics))
	}
	if r.access != nil {
		opts = append(opts, service.WithAccessLog(r.access))
	}
	var st store.StateStore
	switch {
	case spec.windowed():
		bucket, err := time.ParseDuration(spec.WindowBucket)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrRegistry, err)
		}
		opts = append(opts, service.WithWindow(spec.WindowBuckets, bucket))
	case r.baseDir != "" && len(spec.Peers) == 0:
		dir := r.tenantDir(name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrRegistry, err)
		}
		fs, err := store.Open(dir, store.WithSyncMode(r.sync))
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrRegistry, err)
		}
		st = fs
		opts = append(opts, service.WithStore(fs))
	}
	srv, err := service.NewServer(schema, core.PrivacySpec{Rho1: spec.Rho1, Rho2: spec.Rho2}, opts...)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, nil, err
	}
	var coord *federation.Coordinator
	if len(spec.Peers) > 0 {
		var fopts []federation.Option
		if spec.SyncInterval != "" {
			d, _ := time.ParseDuration(spec.SyncInterval)
			fopts = append(fopts, federation.WithSyncInterval(d))
		}
		// No federation metrics here: the federation instruments are
		// registered un-labeled, so only the process's default
		// coordinator (frapp-server -peers) exposes them.
		coord, err = federation.NewCoordinator(srv.CounterScheme(), spec.Peers, srv.ReplaceCounter, fopts...)
		if err == nil {
			err = srv.EnableFederation(coord)
		}
		if err != nil {
			if coord != nil {
				coord.Close()
			}
			srv.Close()
			return nil, nil, err
		}
		coord.Start()
	}
	return srv, coord, nil
}

// manifest is the on-disk registry state: every named collection's
// normalized spec, from which a restart rebuilds the fleet.
type manifest struct {
	Version     int                       `json:"version"`
	Collections map[string]CollectionSpec `json:"collections"`
}

// loadManifest reads the manifest; a missing file is an empty fleet.
func (r *Registry) loadManifest() (map[string]CollectionSpec, error) {
	b, err := os.ReadFile(filepath.Join(r.baseDir, manifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRegistry, err)
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest %s is unreadable (restore or delete it): %v",
			ErrRegistry, filepath.Join(r.baseDir, manifestFile), err)
	}
	for name, spec := range m.Collections {
		if !nameRE.MatchString(name) {
			return nil, fmt.Errorf("%w: manifest holds bad collection name %q", ErrRegistry, name)
		}
		spec := spec
		if err := spec.normalize(); err != nil {
			return nil, fmt.Errorf("%w: manifest entry %q: %v", ErrRegistry, name, err)
		}
		m.Collections[name] = spec
	}
	return m.Collections, nil
}

// persistManifestLocked writes the manifest atomically (tmp + rename +
// directory fsync). Caller holds r.mu. Memory-only registries skip it.
func (r *Registry) persistManifestLocked() error {
	if r.baseDir == "" {
		return nil
	}
	m := manifest{Version: 1, Collections: make(map[string]CollectionSpec)}
	for name, col := range r.collections {
		if col.adopted {
			continue // flag-configured, not manifest-managed
		}
		m.Collections[name] = col.spec
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRegistry, err)
	}
	tmp, err := os.CreateTemp(r.baseDir, ".collections-*")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRegistry, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("%w: %v", ErrRegistry, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("%w: %v", ErrRegistry, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("%w: %v", ErrRegistry, err)
	}
	if err := os.Rename(tmpName, filepath.Join(r.baseDir, manifestFile)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("%w: %v", ErrRegistry, err)
	}
	if err := store.SyncDir(r.baseDir); err != nil {
		return fmt.Errorf("%w: %v", ErrRegistry, err)
	}
	return nil
}
