package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func testSchemaSpec() *SchemaSpec {
	return &SchemaSpec{
		Name: "tenants",
		Attrs: []dataset.Attribute{
			{Name: "a", Categories: []string{"a0", "a1", "a2"}},
			{Name: "b", Categories: []string{"b0", "b1"}},
			{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
		},
	}
}

func testSpec() CollectionSpec {
	return CollectionSpec{Schema: testSchemaSpec(), Rho1: 0.05, Rho2: 0.50, Shards: 2}
}

// startRegistry builds a registry (memory-only unless opts.BaseDir is
// set) and an HTTP front over its handler.
func startRegistry(t *testing.T, o Options) (*Registry, *httptest.Server) {
	t.Helper()
	reg, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(ts.Close)
	return reg, ts
}

// doJSON runs one request and returns status + body.
func doJSON(t *testing.T, ts *httptest.Server, method, path string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// putCollection PUTs a spec and fails the test on an unexpected status.
func putCollection(t *testing.T, ts *httptest.Server, name string, spec CollectionSpec, wantStatus int) []byte {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	status, resp := doJSON(t, ts, "PUT", "/v1/collections/"+name, body)
	if status != wantStatus {
		t.Fatalf("PUT %s: status %d, want %d (%s)", name, status, wantStatus, resp)
	}
	return resp
}

// collectionClient builds a service.Client against the collection-
// scoped base URL — the unmodified client working through the
// path-alias is itself part of what these tests pin down.
func collectionClient(t *testing.T, ts *httptest.Server, name string) *service.Client {
	t.Helper()
	c, err := service.NewClient(ts.URL+"/v1/collections/"+name, service.WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatalf("client for %s: %v", name, err)
	}
	return c
}

// seedRecords synthesizes deterministic records for the test schema.
func seedRecords(schema *dataset.Schema, n int, seed int64) []dataset.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]dataset.Record, n)
	for i := range recs {
		rec := make(dataset.Record, schema.M())
		for j, a := range schema.Attrs {
			rec[j] = rng.Intn(a.Cardinality())
		}
		recs[i] = rec
	}
	return recs
}

func ingestSeeded(t *testing.T, c *service.Client, n int, seed int64) {
	t.Helper()
	if err := c.SubmitBatch(seedRecords(c.Schema(), n, seed), rand.New(rand.NewSource(seed+1))); err != nil {
		t.Fatal(err)
	}
}

// rawQuery POSTs a fixed query body and returns the response bytes —
// raw, so isolation tests can demand BYTE identity, not just value
// identity.
func rawQuery(t *testing.T, ts *httptest.Server, prefix string) []byte {
	t.Helper()
	body := []byte(`{"filters":[{},{"a":"a1"},{"b":"b0","c":"c3"}]}`)
	status, resp := doJSON(t, ts, "POST", prefix+"/v1/query", body)
	if status != http.StatusOK {
		t.Fatalf("query %s: status %d (%s)", prefix, status, resp)
	}
	return resp
}

func TestCollectionLifecycleHTTP(t *testing.T) {
	_, ts := startRegistry(t, Options{MaxCollections: 3})

	// Create, then re-PUT the identical spec: idempotent.
	resp := putCollection(t, ts, "alpha", testSpec(), http.StatusCreated)
	var info CollectionInfo
	if err := json.Unmarshal(resp, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "alpha" || info.Spec.Scheme != "gamma" {
		t.Fatalf("created info = %+v, want name alpha, normalized scheme gamma", info)
	}
	putCollection(t, ts, "alpha", testSpec(), http.StatusOK)

	// A different spec under a live name: conflict, never an overwrite.
	changed := testSpec()
	changed.Rho2 = 0.4
	putCollection(t, ts, "alpha", changed, http.StatusConflict)

	// Bad names and bad specs are 400s.
	putCollection(t, ts, "UPPER", testSpec(), http.StatusBadRequest)
	bad := testSpec()
	bad.Schema = nil
	putCollection(t, ts, "noschema", bad, http.StatusBadRequest)
	if status, _ := doJSON(t, ts, "PUT", "/v1/collections/raw", []byte("{nope")); status != http.StatusBadRequest {
		t.Fatalf("bad JSON spec: %d, want 400", status)
	}

	// Normalization makes differently spelled durations the same spec.
	win := testSpec()
	win.WindowBuckets = 3
	win.WindowBucket = "60s"
	putCollection(t, ts, "win", win, http.StatusCreated)
	win.WindowBucket = "1m"
	putCollection(t, ts, "win", win, http.StatusOK)

	// The cap refuses the collection over the limit.
	putCollection(t, ts, "third", testSpec(), http.StatusCreated)
	putCollection(t, ts, "fourth", testSpec(), http.StatusForbidden)

	// List and get.
	status, resp := doJSON(t, ts, "GET", "/v1/collections", nil)
	if status != http.StatusOK {
		t.Fatalf("list: %d", status)
	}
	var infos []CollectionInfo
	if err := json.Unmarshal(resp, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("list holds %d collections, want 3", len(infos))
	}
	if status, _ := doJSON(t, ts, "GET", "/v1/collections/ghost", nil); status != http.StatusNotFound {
		t.Fatalf("get unknown: %d, want 404", status)
	}

	// Delete frees the slot; deleting again is 404.
	if status, _ := doJSON(t, ts, "DELETE", "/v1/collections/third", nil); status != http.StatusNoContent {
		t.Fatalf("delete: %d, want 204", status)
	}
	if status, _ := doJSON(t, ts, "DELETE", "/v1/collections/third", nil); status != http.StatusNotFound {
		t.Fatalf("re-delete: %d, want 404", status)
	}
	putCollection(t, ts, "fourth", testSpec(), http.StatusCreated)

	// Data plane of an unknown collection is 404.
	if status, _ := doJSON(t, ts, "GET", "/v1/collections/ghost/v1/schema", nil); status != http.StatusNotFound {
		t.Fatalf("data plane of unknown collection: %d, want 404", status)
	}
	// No default collection was adopted: legacy routes say so.
	if status, _ := doJSON(t, ts, "GET", "/v1/schema", nil); status != http.StatusNotFound {
		t.Fatalf("legacy route without default: %d, want 404", status)
	}
}

// TestAdoptedDefaultServesLegacyRoutes: an adopted server answers both
// the un-prefixed legacy routes and the path-scoped form, identically.
func TestAdoptedDefaultServesLegacyRoutes(t *testing.T) {
	reg, ts := startRegistry(t, Options{})
	schema, err := dataset.NewSchema(testSchemaSpec().Name, testSchemaSpec().Attrs)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := service.NewServer(schema, core.PrivacySpec{Rho1: 0.05, Rho2: 0.50}, service.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := reg.Adopt(DefaultCollection, srv); err != nil {
		t.Fatal(err)
	}

	legacy, err := service.NewClient(ts.URL, service.WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ingestSeeded(t, legacy, 120, 7)

	direct := rawQuery(t, ts, "")
	scoped := rawQuery(t, ts, "/v1/collections/"+DefaultCollection)
	if !bytes.Equal(direct, scoped) {
		t.Fatalf("legacy and scoped answers differ:\n%s\n%s", direct, scoped)
	}
	// The default collection is flag-configured: delete refuses, and so
	// does re-creating it over the adopted slot.
	if status, _ := doJSON(t, ts, "DELETE", "/v1/collections/"+DefaultCollection, nil); status != http.StatusForbidden {
		t.Fatalf("delete default: %d, want 403", status)
	}
	putCollection(t, ts, DefaultCollection, testSpec(), http.StatusConflict)
}

// TestCollectionIsolation is the tenant-isolation equivalence proof:
// a query against collection A must return BYTE-identical responses
// before creating B, after ingesting into B, and after deleting B.
func TestCollectionIsolation(t *testing.T) {
	_, ts := startRegistry(t, Options{})

	putCollection(t, ts, "a", testSpec(), http.StatusCreated)
	clientA := collectionClient(t, ts, "a")
	ingestSeeded(t, clientA, 200, 42)
	baseline := rawQuery(t, ts, "/v1/collections/a")

	putCollection(t, ts, "b", testSpec(), http.StatusCreated)
	afterCreate := rawQuery(t, ts, "/v1/collections/a")
	if !bytes.Equal(baseline, afterCreate) {
		t.Fatalf("creating B changed A's answer:\n%s\n%s", baseline, afterCreate)
	}

	clientB := collectionClient(t, ts, "b")
	ingestSeeded(t, clientB, 333, 99)
	afterIngest := rawQuery(t, ts, "/v1/collections/a")
	if !bytes.Equal(baseline, afterIngest) {
		t.Fatalf("ingesting into B changed A's answer:\n%s\n%s", baseline, afterIngest)
	}
	// And B actually received its records — isolation, not inertness.
	if est, err := clientB.Query(service.QueryFilter{}); err != nil || est.N != 333 {
		t.Fatalf("B query: est.N=%d err=%v, want 333", est.N, err)
	}

	if status, _ := doJSON(t, ts, "DELETE", "/v1/collections/b", nil); status != http.StatusNoContent {
		t.Fatal("delete b failed")
	}
	afterDelete := rawQuery(t, ts, "/v1/collections/a")
	if !bytes.Equal(baseline, afterDelete) {
		t.Fatalf("deleting B changed A's answer:\n%s\n%s", baseline, afterDelete)
	}
}

// TestWindowedCollectionViaRegistry: a windowed spec builds a windowed
// server whose window parameter works through the path-scoped routes,
// and whose full-ring windowed answer equals the unwindowed one.
func TestWindowedCollectionViaRegistry(t *testing.T) {
	reg, ts := startRegistry(t, Options{})
	spec := testSpec()
	spec.WindowBuckets = 4
	spec.WindowBucket = "1m"
	putCollection(t, ts, "sliding", spec, http.StatusCreated)

	col, err := reg.Get("sliding")
	if err != nil {
		t.Fatal(err)
	}
	if err := col.AwaitReady(); err != nil {
		t.Fatal(err)
	}
	srv, _ := col.Server()
	if !srv.Windowed() {
		t.Fatal("windowed spec built an unwindowed server")
	}
	if b, d := srv.WindowSpec(); b != 4 || d != time.Minute {
		t.Fatalf("WindowSpec = (%d, %v), want (4, 1m)", b, d)
	}

	client := collectionClient(t, ts, "sliding")
	ingestSeeded(t, client, 150, 5)
	filters := []service.QueryFilter{{}, {"a": "a2"}}
	plain, err := client.QueryAll(filters)
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := client.QueryWindow(filters, "4m")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Records != windowed.Records || plain.Estimates[1].Count != windowed.Estimates[1].Count {
		t.Fatalf("full-ring window disagrees with unwindowed: %+v vs %+v", plain, windowed)
	}
	// A windowed collection cannot federate.
	fed := testSpec()
	fed.WindowBuckets = 2
	fed.WindowBucket = "1m"
	fed.Peers = []string{"http://127.0.0.1:1"}
	putCollection(t, ts, "fedwin", fed, http.StatusBadRequest)
}

// TestRegistryDurability: collections and their data survive a
// registry restart — the manifest rebuilds the fleet, each tenant
// store recovers its own WAL, and a deleted collection stays deleted.
func TestRegistryDurability(t *testing.T) {
	dir := t.TempDir()
	reg1, ts1 := startRegistry(t, Options{BaseDir: dir})

	putCollection(t, ts1, "keep", testSpec(), http.StatusCreated)
	putCollection(t, ts1, "drop", testSpec(), http.StatusCreated)
	keep := collectionClient(t, ts1, "keep")
	ingestSeeded(t, keep, 180, 21)
	drop := collectionClient(t, ts1, "drop")
	ingestSeeded(t, drop, 50, 22)

	// Force the WAL append so the restart has something to recover, and
	// capture the pre-restart answer.
	colKeep, err := reg1.Get("keep")
	if err != nil {
		t.Fatal(err)
	}
	srvKeep, err := colKeep.Server()
	if err != nil {
		t.Fatal(err)
	}
	if err := srvKeep.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	before := rawQuery(t, ts1, "/v1/collections/keep")
	if status, _ := doJSON(t, ts1, "DELETE", "/v1/collections/drop", nil); status != http.StatusNoContent {
		t.Fatal("delete drop failed")
	}
	ts1.Close()
	reg1.Close()

	reg2, ts2 := startRegistry(t, Options{BaseDir: dir})
	if err := reg2.AwaitReady(); err != nil {
		t.Fatal(err)
	}
	after := rawQuery(t, ts2, "/v1/collections/keep")
	if !bytes.Equal(before, after) {
		t.Fatalf("restart changed keep's answer:\n%s\n%s", before, after)
	}
	if _, err := reg2.Get("drop"); err == nil {
		t.Fatal("deleted collection resurrected by restart")
	}
}

// TestRegistryReadyzDuringRecovery pins the slow-recovery contract:
// while any collection is still recovering, /readyz answers 503 naming
// it, the collection's data plane answers 503, and its lifecycle GET
// reports "recovering" — then everything flips once the build lands.
func TestRegistryReadyzDuringRecovery(t *testing.T) {
	dir := t.TempDir()
	reg1, ts1 := startRegistry(t, Options{BaseDir: dir})
	putCollection(t, ts1, "slow", testSpec(), http.StatusCreated)
	ts1.Close()
	reg1.Close()

	gate := make(chan struct{})
	reg2, err := newBlocked(Options{BaseDir: dir}, func(name string) { <-gate })
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	ts2 := httptest.NewServer(reg2.Handler())
	defer ts2.Close()
	ops := httptest.NewServer(telemetry.OpsHandler(telemetry.NewRegistry(), reg2.Ready))
	defer ops.Close()

	resp, err := http.Get(ops.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during recovery: %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "slow: recovering") {
		t.Fatalf("readyz breakdown %q does not name the recovering collection", body)
	}
	if status, b := doJSON(t, ts2, "GET", "/v1/collections/slow/v1/schema", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("data plane during recovery: %d (%s), want 503", status, b)
	}
	status, b := doJSON(t, ts2, "GET", "/v1/collections/slow", nil)
	if status != http.StatusOK {
		t.Fatalf("lifecycle GET during recovery: %d", status)
	}
	var info CollectionInfo
	if err := json.Unmarshal(b, &info); err != nil {
		t.Fatal(err)
	}
	if info.State != "recovering" {
		t.Fatalf("state = %q, want recovering", info.State)
	}

	close(gate)
	if err := reg2.AwaitReady(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ops.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery: %d, want 200", resp.StatusCode)
	}
	if status, _ := doJSON(t, ts2, "GET", "/v1/collections/slow/v1/schema", nil); status != http.StatusOK {
		t.Fatalf("data plane after recovery: %d, want 200", status)
	}
}

// newBlocked is the test hook: a registry whose background builds
// first run delay (used to hold recovery open deterministically).
func newBlocked(o Options, delay func(name string)) (*Registry, error) {
	// The delay must be installed before New spawns manifest rebuilds,
	// so this re-implements New's manifest pass with the seam set.
	r, err := New(Options{MaxCollections: o.MaxCollections, Metrics: o.Metrics, AccessLog: o.AccessLog, SyncMode: o.SyncMode})
	if err != nil {
		return nil, err
	}
	r.buildDelay = delay
	r.baseDir = o.BaseDir
	specs, err := r.loadManifest()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, spec := range specs {
		col := &Collection{name: name, spec: spec, ready: make(chan struct{})}
		r.collections[name] = col
		r.everNamed[name] = true
		go r.build(col)
	}
	return r, nil
}

// TestRegistryTenantChurn drives N collections through concurrent
// create/ingest/query/delete cycles — the race-detector stress target
// CI runs in its tenant-matrix step. Request-level failures against a
// collection mid-delete are expected; data races and panics are not.
func TestRegistryTenantChurn(t *testing.T) {
	_, ts := startRegistry(t, Options{MaxCollections: 16, Metrics: telemetry.NewRegistry()})
	const tenants = 6
	rounds := 4
	if testing.Short() {
		rounds = 2
	}

	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%d", i)
			spec := testSpec()
			// CI's stress matrix pins the scheme; unset means gamma.
			if s := os.Getenv("FRAPP_STRESS_SCHEME"); s != "" {
				spec.Scheme = s
			}
			if i%2 == 0 { // alternate windowed and plain tenants
				spec.WindowBuckets = 3
				spec.WindowBucket = "1m"
			}
			for round := 0; round < rounds; round++ {
				body, _ := json.Marshal(spec)
				status, resp := doJSON(t, ts, "PUT", "/v1/collections/"+name, body)
				if status != http.StatusCreated && status != http.StatusOK {
					t.Errorf("%s round %d: PUT %d (%s)", name, round, status, resp)
					return
				}
				client, err := service.NewClient(ts.URL+"/v1/collections/"+name,
					service.WithHTTPClient(ts.Client()))
				if err != nil {
					t.Errorf("%s round %d: client: %v", name, round, err)
					return
				}
				recs := seedRecords(client.Schema(), 40, int64(i*100+round))
				if err := client.SubmitBatch(recs, rand.New(rand.NewSource(int64(round)))); err != nil {
					t.Errorf("%s round %d: submit: %v", name, round, err)
					return
				}
				est, err := client.Query(service.QueryFilter{})
				if err != nil {
					t.Errorf("%s round %d: query: %v", name, round, err)
					return
				}
				if est.N != 40 {
					t.Errorf("%s round %d: N=%d, want 40 (cross-tenant contamination?)", name, round, est.N)
					return
				}
				if status, _ := doJSON(t, ts, "DELETE", "/v1/collections/"+name, nil); status != http.StatusNoContent {
					t.Errorf("%s round %d: DELETE %d", name, round, status)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
