package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// HTTP surface of the registry.
//
//	PUT    /v1/collections/{name}        create (idempotent on identical spec)
//	GET    /v1/collections/{name}        inspect one collection
//	DELETE /v1/collections/{name}        delete (404 unknown, 403 adopted)
//	GET    /v1/collections               list all collections
//	ANY    /v1/collections/{name}/...    the named collection's data plane
//	ANY    /...                          the default collection (legacy alias)
//
// The data-plane alias strips the /v1/collections/{name} prefix and
// ALSO tolerates a repeated /v1: both /v1/collections/a/submit and
// /v1/collections/a/v1/submit reach POST /v1/submit of collection a.
// The second form is what makes an unmodified service.Client — which
// appends /v1/... to its base URL — work against a collection-scoped
// base URL like http://host/v1/collections/a, and with it every
// existing tool (frapp-loadgen -collection, federation peer URLs).

// maxSpecBody caps a PUT body; specs are small documents.
const maxSpecBody = 1 << 20

// CollectionInfo is the wire form of one collection's state.
type CollectionInfo struct {
	Name string `json:"name"`
	// State is "ready", "recovering", or "failed".
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Records is the live record count, present only when ready.
	Records int `json:"records,omitempty"`
	// Default marks the collection the un-prefixed legacy routes serve.
	Default bool           `json:"default,omitempty"`
	Spec    CollectionSpec `json:"spec"`
}

// info snapshots one collection's state.
func (c *Collection) info() CollectionInfo {
	ci := CollectionInfo{Name: c.name, Spec: c.spec, Default: c.adopted}
	select {
	case <-c.ready:
		if c.err != nil {
			ci.State = "failed"
			ci.Error = c.err.Error()
		} else {
			ci.State = "ready"
			ci.Records = c.srv.N()
		}
	default:
		ci.State = "recovering"
	}
	return ci
}

// Handler returns the registry's full HTTP surface: lifecycle
// endpoints, per-collection data planes, and the legacy alias onto the
// default collection.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/collections", r.handleList)
	mux.HandleFunc("GET /v1/collections/{name}", r.handleGet)
	mux.HandleFunc("PUT /v1/collections/{name}", r.handlePut)
	mux.HandleFunc("DELETE /v1/collections/{name}", r.handleDelete)
	mux.HandleFunc("/v1/collections/{name}/{rest...}", r.handleDataPlane)
	mux.HandleFunc("/", r.handleDefault)
	return mux
}

func (r *Registry) handleList(w http.ResponseWriter, _ *http.Request) {
	infos := make([]CollectionInfo, 0)
	for _, name := range r.Names() {
		if col, err := r.Get(name); err == nil {
			infos = append(infos, col.info())
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (r *Registry) handleGet(w http.ResponseWriter, req *http.Request) {
	col, err := r.Get(req.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, col.info())
}

func (r *Registry) handlePut(w http.ResponseWriter, req *http.Request) {
	req.Body = http.MaxBytesReader(w, req.Body, maxSpecBody)
	var spec CollectionSpec
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("%w: bad spec JSON: %v", ErrRegistry, err))
		return
	}
	col, created, err := r.Create(req.PathValue("name"), spec)
	if err != nil {
		httpError(w, putErrorStatus(err), err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, col.info())
}

// putErrorStatus maps Create failures onto HTTP statuses by message
// shape: conflicts and caps are the caller's state to resolve, the
// rest are bad specs.
func putErrorStatus(err error) int {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "already exists"), strings.Contains(msg, "flag-configured"):
		return http.StatusConflict
	case strings.Contains(msg, "limit"), strings.Contains(msg, "budget"):
		return http.StatusForbidden
	case strings.Contains(msg, "registry is closed"):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (r *Registry) handleDelete(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	col, err := r.Get(name)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if col.Adopted() {
		httpError(w, http.StatusForbidden,
			fmt.Errorf("%w: collection %q is flag-configured and cannot be deleted", ErrRegistry, name))
		return
	}
	if err := r.Delete(name); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleDataPlane routes a collection-scoped request into that
// collection's own server, rewriting the path back to the un-prefixed
// form its mux was built for.
func (r *Registry) handleDataPlane(w http.ResponseWriter, req *http.Request) {
	col, err := r.Get(req.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	srv, err := col.Server()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	inner := "/v1/" + strings.TrimPrefix(req.PathValue("rest"), "v1/")
	r2 := req.Clone(req.Context())
	r2.URL.Path = inner
	r2.URL.RawPath = ""
	srv.Handler().ServeHTTP(w, r2)
}

// handleDefault serves the legacy un-prefixed routes from the default
// collection, unchanged — single-tenant clients never see the registry.
func (r *Registry) handleDefault(w http.ResponseWriter, req *http.Request) {
	col, err := r.Get(DefaultCollection)
	if err != nil {
		httpError(w, http.StatusNotFound,
			errors.New("registry: no default collection; use /v1/collections/{name}/..."))
		return
	}
	srv, err := col.Server()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	srv.Handler().ServeHTTP(w, req)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
