// Package classify extends FRAPP to a second mining task, the direction
// the paper's conclusions point to ("we plan to extend our modeling
// approach to other flavors of mining tasks"): Naive Bayes
// classification trained on a gamma-perturbed database.
//
// The classifier needs only the class prior P(C=c) and the
// class-conditional marginals P(A_j=v | C=c). Both are supports of 1-
// and 2-itemsets, so they are estimable from the perturbed database with
// exactly the Eq. 28 marginal reconstruction used for association-rule
// mining — no new privacy machinery required.
package classify

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
)

// ErrClassify is returned for invalid classifier configuration or input.
var ErrClassify = errors.New("classify: invalid input")

// NaiveBayes is a categorical Naive Bayes model over one schema, with a
// designated class attribute.
type NaiveBayes struct {
	Schema    *dataset.Schema
	ClassAttr int
	// logPrior[c] = log P(C=c).
	logPrior []float64
	// logCond[j][v][c] = log P(A_j=v | C=c) for j ≠ ClassAttr.
	logCond [][][]float64
}

// Classes returns the number of class labels.
func (nb *NaiveBayes) Classes() int {
	return nb.Schema.Attrs[nb.ClassAttr].Cardinality()
}

// smooth converts possibly-noisy (even negative, under reconstruction)
// count estimates into a strictly positive probability distribution with
// Laplace smoothing.
func smooth(counts []float64) []float64 {
	const pseudo = 1.0
	out := make([]float64, len(counts))
	var total float64
	for i, c := range counts {
		if c < 0 {
			c = 0 // reconstruction noise can go negative; clamp
		}
		out[i] = c + pseudo
		total += c + pseudo
	}
	for i := range out {
		out[i] = math.Log(out[i] / total)
	}
	return out
}

// TrainExact fits the model on an unperturbed database — the
// non-private baseline.
func TrainExact(db *dataset.Database, classAttr int) (*NaiveBayes, error) {
	counter := &mining.ExactCounter{DB: db}
	return train(counter, db.Schema, classAttr)
}

// TrainPerturbed fits the model on a gamma-perturbed database: every
// prior and class-conditional count is reconstructed through the
// uniform-off-diagonal matrix m (the expected matrix, for RAN-GD data).
func TrainPerturbed(perturbed *dataset.Database, m core.UniformMatrix, classAttr int) (*NaiveBayes, error) {
	counter, err := mining.NewGammaCounter(perturbed, m)
	if err != nil {
		return nil, err
	}
	return train(counter, perturbed.Schema, classAttr)
}

// train estimates all needed supports through the counter.
func train(counter mining.SupportCounter, sc *dataset.Schema, classAttr int) (*NaiveBayes, error) {
	if classAttr < 0 || classAttr >= sc.M() {
		return nil, fmt.Errorf("%w: class attribute %d out of range", ErrClassify, classAttr)
	}
	nClasses := sc.Attrs[classAttr].Cardinality()

	// Class priors: supports of the class 1-itemsets.
	classSets := make([]mining.Itemset, nClasses)
	for c := 0; c < nClasses; c++ {
		classSets[c] = mining.Itemset{{Attr: classAttr, Value: c}}
	}
	priorCounts, err := counter.Supports(classSets)
	if err != nil {
		return nil, err
	}

	nb := &NaiveBayes{
		Schema:    sc,
		ClassAttr: classAttr,
		logPrior:  smooth(priorCounts),
		logCond:   make([][][]float64, sc.M()),
	}

	// Class-conditional marginals: supports of (attr=v, class=c) pairs,
	// normalized within each class.
	for j := 0; j < sc.M(); j++ {
		if j == classAttr {
			continue
		}
		card := sc.Attrs[j].Cardinality()
		var pairs []mining.Itemset
		for v := 0; v < card; v++ {
			for c := 0; c < nClasses; c++ {
				set, err := mining.NewItemset(
					mining.Item{Attr: j, Value: v},
					mining.Item{Attr: classAttr, Value: c},
				)
				if err != nil {
					return nil, err
				}
				pairs = append(pairs, set)
			}
		}
		pairCounts, err := counter.Supports(pairs)
		if err != nil {
			return nil, err
		}
		nb.logCond[j] = make([][]float64, card)
		// Reorganize to per-class columns then smooth per class across v.
		perClass := make([][]float64, nClasses)
		for c := range perClass {
			perClass[c] = make([]float64, card)
		}
		for v := 0; v < card; v++ {
			for c := 0; c < nClasses; c++ {
				perClass[c][v] = pairCounts[v*nClasses+c]
			}
		}
		smoothed := make([][]float64, nClasses)
		for c := 0; c < nClasses; c++ {
			smoothed[c] = smooth(perClass[c])
		}
		for v := 0; v < card; v++ {
			nb.logCond[j][v] = make([]float64, nClasses)
			for c := 0; c < nClasses; c++ {
				nb.logCond[j][v][c] = smoothed[c][v]
			}
		}
	}
	return nb, nil
}

// Predict returns the most probable class for a record. The record's
// class-attribute value is ignored, so labeled records can be scored
// directly.
func (nb *NaiveBayes) Predict(rec dataset.Record) (int, error) {
	if len(rec) != nb.Schema.M() {
		return 0, fmt.Errorf("%w: record has %d values, schema has %d", ErrClassify, len(rec), nb.Schema.M())
	}
	nClasses := nb.Classes()
	best, bestScore := 0, math.Inf(-1)
	for c := 0; c < nClasses; c++ {
		score := nb.logPrior[c]
		for j, v := range rec {
			if j == nb.ClassAttr {
				continue
			}
			if v < 0 || v >= nb.Schema.Attrs[j].Cardinality() {
				return 0, fmt.Errorf("%w: value %d out of range for attribute %d", ErrClassify, v, j)
			}
			score += nb.logCond[j][v][c]
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best, nil
}

// Accuracy scores the model on a labeled database, returning the
// fraction of records whose class attribute is predicted correctly.
func Accuracy(nb *NaiveBayes, db *dataset.Database) (float64, error) {
	if db.N() == 0 {
		return 0, fmt.Errorf("%w: empty evaluation database", ErrClassify)
	}
	correct := 0
	for _, rec := range db.Records {
		pred, err := nb.Predict(rec)
		if err != nil {
			return 0, err
		}
		if pred == rec[nb.ClassAttr] {
			correct++
		}
	}
	return float64(correct) / float64(db.N()), nil
}

// MajorityBaseline returns the accuracy of always predicting the most
// common class — the floor any useful classifier must beat.
func MajorityBaseline(db *dataset.Database, classAttr int) (float64, error) {
	counts, err := db.ValueCounts(classAttr)
	if err != nil {
		return 0, err
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if db.N() == 0 {
		return 0, fmt.Errorf("%w: empty database", ErrClassify)
	}
	return float64(best) / float64(db.N()), nil
}
