package classify

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// learnableSchema has a class attribute (last) strongly predicted by the
// first two attributes.
func learnableSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema("learnable", []dataset.Attribute{
		{Name: "f1", Categories: []string{"a", "b", "c"}},
		{Name: "f2", Categories: []string{"x", "y"}},
		{Name: "noise", Categories: []string{"n0", "n1", "n2"}},
		{Name: "class", Categories: []string{"neg", "pos"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// genLearnable draws records where class = pos iff f1==a XOR-ish with f2,
// with 10% label noise, plus an irrelevant attribute.
func genLearnable(t *testing.T, s *dataset.Schema, n int, seed int64) *dataset.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := dataset.NewDatabase(s, n)
	for i := 0; i < n; i++ {
		f1 := rng.Intn(3)
		f2 := rng.Intn(2)
		class := 0
		if f1 == 0 || f2 == 1 {
			class = 1
		}
		if rng.Float64() < 0.1 {
			class = 1 - class
		}
		rec := dataset.Record{f1, f2, rng.Intn(3), class}
		if err := db.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestExactNaiveBayesLearns(t *testing.T) {
	s := learnableSchema(t)
	train := genLearnable(t, s, 20000, 1)
	test := genLearnable(t, s, 5000, 2)
	nb, err := TrainExact(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Classes() != 2 {
		t.Fatalf("Classes = %d", nb.Classes())
	}
	acc, err := Accuracy(nb, test)
	if err != nil {
		t.Fatal(err)
	}
	base, err := MajorityBaseline(test, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The concept is learnable to ~90% (label noise floor); baseline ~67%.
	if acc < 0.85 {
		t.Fatalf("exact NB accuracy %v too low", acc)
	}
	if acc <= base+0.05 {
		t.Fatalf("exact NB accuracy %v does not beat majority %v", acc, base)
	}
}

func TestPerturbedNaiveBayesApproachesExact(t *testing.T) {
	s := learnableSchema(t)
	train := genLearnable(t, s, 60000, 3)
	test := genLearnable(t, s, 5000, 4)

	// Moderate privacy on this small domain (|S_U| = 36): γ=19 keeps the
	// condition number at (19+35)/18 = 3, so reconstruction is sharp.
	m, err := core.NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewGammaPerturber(s, m)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := core.PerturbDatabase(train, p, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}

	exact, err := TrainExact(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	private, err := TrainPerturbed(perturbed, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	accExact, err := Accuracy(exact, test)
	if err != nil {
		t.Fatal(err)
	}
	accPrivate, err := Accuracy(private, test)
	if err != nil {
		t.Fatal(err)
	}
	base, err := MajorityBaseline(test, 3)
	if err != nil {
		t.Fatal(err)
	}
	if accPrivate <= base+0.05 {
		t.Fatalf("private NB %v does not beat majority %v", accPrivate, base)
	}
	if accExact-accPrivate > 0.05 {
		t.Fatalf("private NB %v too far below exact %v", accPrivate, accExact)
	}
}

func TestPerturbedNaiveBayesWithRandomizedMatrix(t *testing.T) {
	s := learnableSchema(t)
	train := genLearnable(t, s, 60000, 6)
	test := genLearnable(t, s, 5000, 7)
	m, err := core.NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewRandomizedGammaPerturber(s, m, m.Diag/2)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := core.PerturbDatabase(train, p, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := TrainPerturbed(perturbed, p.ExpectedMatrix(), 3)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(nb, test)
	if err != nil {
		t.Fatal(err)
	}
	base, err := MajorityBaseline(test, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= base+0.05 {
		t.Fatalf("RAN-GD-trained NB %v does not beat majority %v", acc, base)
	}
}

func TestNaiveBayesValidation(t *testing.T) {
	s := learnableSchema(t)
	db := genLearnable(t, s, 100, 9)
	if _, err := TrainExact(db, -1); !errors.Is(err, ErrClassify) {
		t.Fatal("negative class attribute accepted")
	}
	if _, err := TrainExact(db, 9); !errors.Is(err, ErrClassify) {
		t.Fatal("out-of-range class attribute accepted")
	}
	nb, err := TrainExact(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.Predict(dataset.Record{0, 0}); !errors.Is(err, ErrClassify) {
		t.Fatal("short record accepted")
	}
	if _, err := nb.Predict(dataset.Record{9, 0, 0, 0}); !errors.Is(err, ErrClassify) {
		t.Fatal("out-of-range value accepted")
	}
	empty := dataset.NewDatabase(s, 0)
	if _, err := Accuracy(nb, empty); !errors.Is(err, ErrClassify) {
		t.Fatal("empty evaluation accepted")
	}
	if _, err := MajorityBaseline(empty, 3); !errors.Is(err, ErrClassify) {
		t.Fatal("empty baseline accepted")
	}
	if _, err := MajorityBaseline(db, 9); err == nil {
		t.Fatal("bad class attribute accepted by baseline")
	}
	wrongOrder, _ := core.NewGammaDiagonal(5, 19)
	if _, err := TrainPerturbed(db, wrongOrder, 3); err == nil {
		t.Fatal("matrix/domain mismatch accepted")
	}
}

func TestSmoothHandlesNegativeCounts(t *testing.T) {
	out := smooth([]float64{-5, 10, 0})
	var total float64
	for _, lp := range out {
		total += math.Exp(lp)
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("smoothed distribution sums to %v", total)
	}
	// The clamped negative must be the smallest probability.
	if !(out[0] < out[1]) {
		t.Fatal("negative count not clamped below positive count")
	}
}
