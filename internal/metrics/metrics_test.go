package metrics

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mining"
)

func mkResult(levels ...[]mining.FrequentItemset) *mining.Result {
	return &mining.Result{MinSupport: 0.02, ByLength: levels}
}

func item(a, v int) mining.Item { return mining.Item{Attr: a, Value: v} }

func fi(sup float64, items ...mining.Item) mining.FrequentItemset {
	s, err := mining.NewItemset(items...)
	if err != nil {
		panic(err)
	}
	return mining.FrequentItemset{Items: s, Support: sup}
}

func TestEvaluatePerfectRun(t *testing.T) {
	truth := mkResult(
		[]mining.FrequentItemset{fi(0.5, item(0, 0)), fi(0.3, item(1, 1))},
		[]mining.FrequentItemset{fi(0.2, item(0, 0), item(1, 1))},
	)
	rep, err := Evaluate(truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	for _, le := range rep.Levels {
		if le.SupportError != 0 {
			t.Fatalf("length %d: support error %v", le.Length, le.SupportError)
		}
		if le.FalsePositives != 0 || le.FalseNegatives != 0 {
			t.Fatalf("length %d: identity errors %v/%v", le.Length, le.FalsePositives, le.FalseNegatives)
		}
	}
	if rep.Overall.SupportError != 0 || rep.Overall.TrueCount != 3 {
		t.Fatalf("overall %+v", rep.Overall)
	}
}

func TestEvaluateKnownErrors(t *testing.T) {
	truth := mkResult(
		[]mining.FrequentItemset{
			fi(0.5, item(0, 0)),
			fi(0.4, item(1, 1)),
			fi(0.2, item(2, 2)),
			fi(0.1, item(2, 3)),
		},
	)
	// Mined: got 0=0 with 10% relative error, missed 1=1 and 2=3,
	// matched 2=2 exactly, and invented 1=0.
	mined := mkResult(
		[]mining.FrequentItemset{
			fi(0.55, item(0, 0)),
			fi(0.2, item(2, 2)),
			fi(0.3, item(1, 0)),
		},
	)
	rep, err := Evaluate(truth, mined)
	if err != nil {
		t.Fatal(err)
	}
	le, ok := rep.Level(1)
	if !ok {
		t.Fatal("level 1 missing")
	}
	// ρ = mean(10%, 0%) = 5%.
	if math.Abs(le.SupportError-5) > 1e-9 {
		t.Fatalf("support error %v, want 5", le.SupportError)
	}
	// σ− = 2/4·100 = 50; σ+ = 1/4·100 = 25.
	if math.Abs(le.FalseNegatives-50) > 1e-9 {
		t.Fatalf("false negatives %v, want 50", le.FalseNegatives)
	}
	if math.Abs(le.FalsePositives-25) > 1e-9 {
		t.Fatalf("false positives %v, want 25", le.FalsePositives)
	}
	if le.TrueCount != 4 || le.MinedCount != 3 {
		t.Fatalf("counts %d/%d", le.TrueCount, le.MinedCount)
	}
}

func TestEvaluateMissedWholeLevel(t *testing.T) {
	truth := mkResult(
		[]mining.FrequentItemset{fi(0.5, item(0, 0))},
		[]mining.FrequentItemset{fi(0.2, item(0, 0), item(1, 1))},
	)
	mined := mkResult(
		[]mining.FrequentItemset{fi(0.5, item(0, 0))},
	)
	rep, err := Evaluate(truth, mined)
	if err != nil {
		t.Fatal(err)
	}
	le, ok := rep.Level(2)
	if !ok {
		t.Fatal("level 2 missing")
	}
	if !math.IsNaN(le.SupportError) {
		t.Fatalf("support error %v, want NaN (nothing identified)", le.SupportError)
	}
	if le.FalseNegatives != 100 {
		t.Fatalf("false negatives %v, want 100", le.FalseNegatives)
	}
}

func TestEvaluateExtraLevelInMined(t *testing.T) {
	truth := mkResult(
		[]mining.FrequentItemset{fi(0.5, item(0, 0))},
	)
	mined := mkResult(
		[]mining.FrequentItemset{fi(0.5, item(0, 0))},
		[]mining.FrequentItemset{fi(0.2, item(0, 0), item(1, 1))},
	)
	rep, err := Evaluate(truth, mined)
	if err != nil {
		t.Fatal(err)
	}
	le, ok := rep.Level(2)
	if !ok {
		t.Fatal("level 2 missing from report")
	}
	if !math.IsInf(le.FalsePositives, 1) {
		t.Fatalf("false positives with empty truth = %v, want +Inf", le.FalsePositives)
	}
}

func TestEvaluateNil(t *testing.T) {
	if _, err := Evaluate(nil, mkResult()); !errors.Is(err, ErrMetrics) {
		t.Fatal("nil truth accepted")
	}
	if _, err := Evaluate(mkResult(), nil); !errors.Is(err, ErrMetrics) {
		t.Fatal("nil mined accepted")
	}
}

func TestLevelLookupMissing(t *testing.T) {
	rep := &Report{}
	if _, ok := rep.Level(3); ok {
		t.Fatal("Level invented data")
	}
}
