// Package metrics implements the two accuracy measures of Section 7 of
// the FRAPP paper: the support error ρ and the identity errors σ+ (false
// positives) and σ− (false negatives), both overall and per itemset
// length.
package metrics

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mining"
)

// ErrMetrics is returned for malformed metric inputs.
var ErrMetrics = errors.New("metrics: invalid input")

// LevelErrors holds the paper's error metrics for one itemset length.
type LevelErrors struct {
	Length int
	// SupportError is ρ: the mean percentage relative error of the
	// reconstructed supports over the CORRECTLY identified frequent
	// itemsets. NaN when no itemset of this length was identified.
	SupportError float64
	// FalsePositives is σ+: |R−F|/|F| · 100.
	FalsePositives float64
	// FalseNegatives is σ−: |F−R|/|F| · 100.
	FalseNegatives float64
	// TrueCount and MinedCount are |F| and |R| for this length.
	TrueCount  int
	MinedCount int
}

// Report is the full error report of one mining run against ground truth.
type Report struct {
	Levels []LevelErrors
	// Overall metrics across all lengths.
	Overall LevelErrors
}

// Evaluate compares a reconstructed mining result against the ground
// truth result on the same data and minimum support.
func Evaluate(truth, mined *mining.Result) (*Report, error) {
	if truth == nil || mined == nil {
		return nil, fmt.Errorf("%w: nil result", ErrMetrics)
	}
	maxLen := len(truth.ByLength)
	if len(mined.ByLength) > maxLen {
		maxLen = len(mined.ByLength)
	}
	trueByLen := indexByLength(truth, maxLen)
	minedByLen := indexByLength(mined, maxLen)

	rep := &Report{}
	var totTrue, totMined, totHits, totFP, totFN int
	var totRelErr float64
	var totRelCount int
	for l := 0; l < maxLen; l++ {
		tm, mm := trueByLen[l], minedByLen[l]
		var hits, fp, fn int
		var relErr float64
		for key, trueSup := range tm {
			if minedSup, ok := mm[key]; ok {
				hits++
				if trueSup > 0 {
					relErr += math.Abs(minedSup-trueSup) / trueSup
				}
			} else {
				fn++
			}
		}
		for key := range mm {
			if _, ok := tm[key]; !ok {
				fp++
			}
		}
		le := LevelErrors{
			Length:     l + 1,
			TrueCount:  len(tm),
			MinedCount: len(mm),
		}
		if hits > 0 {
			le.SupportError = relErr / float64(hits) * 100
		} else {
			le.SupportError = math.NaN()
		}
		if len(tm) > 0 {
			le.FalsePositives = float64(fp) / float64(len(tm)) * 100
			le.FalseNegatives = float64(fn) / float64(len(tm)) * 100
		} else if fp > 0 {
			le.FalsePositives = math.Inf(1)
		}
		rep.Levels = append(rep.Levels, le)

		totTrue += len(tm)
		totMined += len(mm)
		totHits += hits
		totFP += fp
		totFN += fn
		totRelErr += relErr
		totRelCount += hits
	}
	rep.Overall = LevelErrors{
		Length:     0,
		TrueCount:  totTrue,
		MinedCount: totMined,
	}
	if totRelCount > 0 {
		rep.Overall.SupportError = totRelErr / float64(totRelCount) * 100
	} else {
		rep.Overall.SupportError = math.NaN()
	}
	if totTrue > 0 {
		rep.Overall.FalsePositives = float64(totFP) / float64(totTrue) * 100
		rep.Overall.FalseNegatives = float64(totFN) / float64(totTrue) * 100
	}
	return rep, nil
}

func indexByLength(r *mining.Result, maxLen int) []map[string]float64 {
	out := make([]map[string]float64, maxLen)
	for i := range out {
		out[i] = make(map[string]float64)
	}
	for _, level := range r.ByLength {
		for _, f := range level {
			l := f.Items.Len() - 1
			if l >= 0 && l < maxLen {
				out[l][f.Items.Key()] = f.Support
			}
		}
	}
	return out
}

// Level returns the metrics for itemset length l (1-based), if present.
func (r *Report) Level(l int) (LevelErrors, bool) {
	for _, le := range r.Levels {
		if le.Length == l {
			return le, true
		}
	}
	return LevelErrors{}, false
}
