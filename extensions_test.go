package frapp

import (
	"math/rand"
	"net/http/httptest"
	"testing"
)

func TestFacadeClassifier(t *testing.T) {
	train, err := GenerateCensus(20000, 31)
	if err != nil {
		t.Fatal(err)
	}
	test, err := GenerateCensus(4000, 32)
	if err != nil {
		t.Fatal(err)
	}
	test.Schema = train.Schema
	const classAttr = 4 // sex

	pipe, err := NewPipeline(train.Schema, PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := pipe.Perturb(train, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := TrainPerturbedNaiveBayes(perturbed, pipe.Matrix(), classAttr)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ClassifierAccuracy(nb, test)
	if err != nil {
		t.Fatal(err)
	}
	base, err := MajorityBaseline(test, classAttr)
	if err != nil {
		t.Fatal(err)
	}
	// The perturbed-trained model must be usable: within a reasonable
	// band of (or above) the majority baseline, never degenerate.
	if acc < base-0.15 {
		t.Fatalf("private classifier accuracy %v far below baseline %v", acc, base)
	}
	exact, err := TrainExactNaiveBayes(train, classAttr)
	if err != nil {
		t.Fatal(err)
	}
	accExact, err := ClassifierAccuracy(exact, test)
	if err != nil {
		t.Fatal(err)
	}
	// Naive Bayes may trail the majority rule slightly on a weakly
	// predictive class; the private model must stay close to the exact
	// one — that is the property this facade test pins down.
	if accExact-acc > 0.10 {
		t.Fatalf("private classifier %v too far below exact %v", acc, accExact)
	}
}

func TestFacadeCollectionService(t *testing.T) {
	srv, err := NewCollectionServer(CensusSchema(), PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewCollectionClient(ts.URL, WithHTTPClient(ts.Client()), WithClientRandomization(0.5))
	if err != nil {
		t.Fatal(err)
	}
	db, err := GenerateCensus(500, 33)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := client.SubmitBatch(db.Records, rng); err != nil {
		t.Fatal(err)
	}
	if srv.N() != 500 {
		t.Fatalf("server holds %d records", srv.N())
	}
	mr, err := client.Mine(0.2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Records != 500 {
		t.Fatalf("mine response %+v", mr)
	}
}

func TestFacadeDiscretize(t *testing.T) {
	age, err := NewEquiWidthBinner("age", 15, 75, 4)
	if err != nil {
		t.Fatal(err)
	}
	hours, err := NewQuantileBinner("hours", []float64{10, 20, 30, 40, 50, 60, 70, 80}, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Discretize("survey", []*Binner{age, hours}, [][]float64{
		{22, 35}, {64, 60}, {40, 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.N() != 3 {
		t.Fatalf("N = %d", db.N())
	}
	// The discretized database runs through the full pipeline.
	pipe, err := NewPipeline(db.Schema, PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Perturb(db, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeQueryEngine(t *testing.T) {
	db, err := GenerateCensus(30000, 90)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(db.Schema, PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := pipe.PerturbParallel(db, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewQueryEngine(perturbed, pipe.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	// "How many records have sex=Female?" with an error bar.
	filter, err := NewItemset(Item{Attr: 4, Value: 0})
	if err != nil {
		t.Fatal(err)
	}
	est, err := eng.Count(filter)
	if err != nil {
		t.Fatal(err)
	}
	var truth float64
	for _, rec := range db.Records {
		if rec[4] == 0 {
			truth++
		}
	}
	if est.StdErr <= 0 {
		t.Fatal("no error bar")
	}
	if truth < est.Count-5*est.StdErr || truth > est.Count+5*est.StdErr {
		t.Fatalf("truth %v outside 5-sigma band of %v ± %v", truth, est.Count, est.StdErr)
	}
}
