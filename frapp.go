// Package frapp is the public API of this FRAPP reproduction — the
// framework for high-accuracy privacy-preserving mining of Agrawal &
// Haritsa (ICDE 2005).
//
// FRAPP models client-side random perturbation of categorical records as
// a Markov transition matrix A, shows that the (ρ1, ρ2) amplification
// privacy requirement reduces to a bound γ on the ratio of entries within
// any row of A, and derives the "gamma-diagonal" matrix — γx on the
// diagonal and x = 1/(γ+n−1) elsewhere — as the minimum-condition-number
// (and therefore highest-accuracy) choice under that bound. A randomized
// variant perturbs each client with a private random realization of the
// matrix, improving privacy at marginal accuracy cost.
//
// The package surface has three layers:
//
//   - Data model: Schema, Record, Database and the synthetic CENSUS and
//     HEALTH datasets of the paper's evaluation.
//   - Mechanisms: gamma-diagonal (deterministic and randomized)
//     perturbation, the MASK and Cut-and-Paste baselines, privacy
//     accounting (Gamma, PosteriorRange), reconstruction, and
//     condition-number analysis.
//   - Mining: Apriori frequent-itemset mining with per-scheme support
//     reconstruction, association-rule generation, and the paper's
//     accuracy metrics (support error ρ, identity errors σ+/σ−).
//
// A minimal end-to-end flow:
//
//	schema := frapp.CensusSchema()
//	priv := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50} // γ = 19
//	pipe, err := frapp.NewPipeline(schema, priv)
//	// clients perturb locally:
//	perturbed, err := pipe.Perturb(db, rng)
//	// the miner reconstructs supports while mining:
//	result, err := pipe.Mine(perturbed, 0.02)
package frapp

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/mining"
)

// Data-model types (see internal/dataset).
type (
	// Attribute is one categorical attribute: a name plus its finite
	// category list.
	Attribute = dataset.Attribute
	// Schema describes the record domain of a categorical database.
	Schema = dataset.Schema
	// Record is one tuple: the chosen category index for each attribute.
	Record = dataset.Record
	// Database is a set of records under one schema.
	Database = dataset.Database
	// MixtureModel is the synthetic-data generator model.
	MixtureModel = dataset.MixtureModel
	// Profile is one correlated sub-population of a MixtureModel.
	Profile = dataset.Profile
)

// Framework types (see internal/core).
type (
	// PrivacySpec is the strict (ρ1, ρ2) amplification requirement.
	PrivacySpec = core.PrivacySpec
	// UniformMatrix is a diagonal+constant perturbation matrix — the
	// gamma-diagonal family.
	UniformMatrix = core.UniformMatrix
	// Perturber maps an original record to a perturbed one.
	Perturber = core.Perturber
	// GammaPerturber is the efficient DET-GD perturbation engine.
	GammaPerturber = core.GammaPerturber
	// RandomizedGammaPerturber is the RAN-GD perturbation engine.
	RandomizedGammaPerturber = core.RandomizedGammaPerturber
	// BoolMapping maps categorical records to boolean item vectors.
	BoolMapping = core.BoolMapping
	// BoolDatabase is a perturbed boolean database (MASK, C&P).
	BoolDatabase = core.BoolDatabase
	// MaskScheme is the MASK flip-perturbation baseline.
	MaskScheme = core.MaskScheme
	// CutPasteScheme is the Cut-and-Paste randomization baseline.
	CutPasteScheme = core.CutPasteScheme
	// Dense is the dense-matrix type used for custom perturbation
	// matrices and condition-number analysis.
	Dense = linalg.Dense
)

// Mining types (see internal/mining and internal/metrics).
type (
	// Item is one attribute-value pair.
	Item = mining.Item
	// Itemset is a canonical set of items.
	Itemset = mining.Itemset
	// FrequentItemset pairs an itemset with its support fraction.
	FrequentItemset = mining.FrequentItemset
	// MiningResult is an Apriori run's output.
	MiningResult = mining.Result
	// SupportCounter abstracts per-pass support computation.
	SupportCounter = mining.SupportCounter
	// Rule is an association rule with support and confidence.
	Rule = mining.Rule
	// AccuracyReport compares mined output to ground truth with the
	// paper's ρ/σ+/σ− metrics.
	AccuracyReport = metrics.Report
	// LevelErrors is one itemset length's row of an AccuracyReport.
	LevelErrors = metrics.LevelErrors
)

// Schema and data constructors.
var (
	// NewSchema validates attributes and builds the record↔index mapping.
	NewSchema = dataset.NewSchema
	// CensusSchema is the paper's Table 1 schema.
	CensusSchema = dataset.CensusSchema
	// HealthSchema is the paper's Table 2 schema.
	HealthSchema = dataset.HealthSchema
	// GenerateCensus synthesizes a CENSUS-like database.
	GenerateCensus = dataset.GenerateCensus
	// GenerateHealth synthesizes a HEALTH-like database.
	GenerateHealth = dataset.GenerateHealth
	// NewDatabase creates an empty database.
	NewDatabase = dataset.NewDatabase
	// ReadCSV and WriteCSV (de)serialize databases.
	ReadCSV  = dataset.ReadCSV
	WriteCSV = dataset.WriteCSV
)

// Framework constructors and functions.
var (
	// NewGammaDiagonal builds the paper's optimal perturbation matrix.
	NewGammaDiagonal = core.NewGammaDiagonal
	// NewGammaPerturber builds the efficient Section 5 perturbation.
	NewGammaPerturber = core.NewGammaPerturber
	// NewRandomizedGammaPerturber builds the Section 4 RAN-GD perturbation.
	NewRandomizedGammaPerturber = core.NewRandomizedGammaPerturber
	// NewDensePerturber perturbs with an arbitrary dense Markov matrix.
	NewDensePerturber = core.NewDensePerturber
	// PerturbDatabase applies a perturber to every record.
	PerturbDatabase = core.PerturbDatabase
	// NewBoolMapping prepares the categorical→boolean encoding.
	NewBoolMapping = core.NewBoolMapping
	// NewMaskScheme / NewMaskSchemeForPrivacy build the MASK baseline.
	NewMaskScheme           = core.NewMaskScheme
	NewMaskSchemeForPrivacy = core.NewMaskSchemeForPrivacy
	// MaskPForGamma returns MASK's retention probability for a γ bound.
	MaskPForGamma = core.MaskPForGamma
	// NewCutPasteScheme builds the C&P baseline.
	NewCutPasteScheme = core.NewCutPasteScheme
	// FindRhoForGamma searches C&P's ρ under a γ constraint.
	FindRhoForGamma = core.FindRhoForGamma
	// Amplification measures a matrix's worst row-entry ratio.
	Amplification = core.Amplification
	// PosteriorFromGamma inverts the γ bound to a worst-case posterior.
	PosteriorFromGamma = core.PosteriorFromGamma
	// PosteriorRange is the Section 4.1 randomized posterior interval.
	PosteriorRange = core.PosteriorRange
	// RandomizedPosterior evaluates ρ2(r) at one realization.
	RandomizedPosterior = core.RandomizedPosterior
	// ReconstructHistogram solves Y = A·X̂ in closed form.
	ReconstructHistogram = core.ReconstructHistogram
	// ReconstructHistogramDense solves with any invertible matrix.
	ReconstructHistogramDense = core.ReconstructHistogramDense
	// EstimationErrorBound evaluates Theorem 1's error bound.
	EstimationErrorBound = core.EstimationErrorBound
	// RelativeError computes ‖X̂−X‖/‖X‖.
	RelativeError = core.RelativeError
)

// Mining constructors and functions.
var (
	// NewItemset canonicalizes items into an Itemset.
	NewItemset = mining.NewItemset
	// Apriori mines frequent itemsets through any SupportCounter.
	Apriori = mining.Apriori
	// NewGammaCounter reconstructs supports from gamma-perturbed data.
	NewGammaCounter = mining.NewGammaCounter
	// NewMaterializedGammaCounter builds the incremental counter of the
	// collection service (instant mining, single-striped ingestion).
	NewMaterializedGammaCounter = mining.NewMaterializedGammaCounter
	// NewShardedGammaCounter builds the lock-striped incremental counter
	// (linearly scalable concurrent ingestion) under the gamma scheme.
	NewShardedGammaCounter = mining.NewShardedGammaCounter
	// NewShardedCounter builds the lock-striped incremental counter for
	// any CounterScheme — gamma, MASK, or cut-and-paste.
	NewShardedCounter = mining.NewShardedCounter
	// SchemeForContract derives a scheme's full counting contract from
	// the published (schema, γ) privacy contract.
	SchemeForContract = mining.SchemeForContract
	// NewGammaScheme, NewMaskCounterScheme, and NewCutPasteCounterScheme
	// wrap validated mechanisms as counting contracts.
	NewGammaScheme           = mining.NewGammaScheme
	NewMaskCounterScheme     = mining.NewMaskCounterScheme
	NewCutPasteCounterScheme = mining.NewCutPasteCounterScheme
	// SchemeNames lists the supported live schemes.
	SchemeNames = mining.SchemeNames
	// GenerateRules derives association rules from a mining result.
	GenerateRules = mining.GenerateRules
	// EvaluateAccuracy compares mined output with ground truth.
	EvaluateAccuracy = metrics.Evaluate
)

// ExactCounter counts true supports on unperturbed data.
type ExactCounter = mining.ExactCounter

// GammaCounter reconstructs supports under gamma-diagonal perturbation.
type GammaCounter = mining.GammaCounter

// MaterializedGammaCounter incrementally materializes every subset
// histogram so mining never rescans submissions.
type MaterializedGammaCounter = mining.MaterializedGammaCounter

// LiveCounter is the scheme-polymorphic live ingestion counter: the one
// interface the collection service, query engine, mining jobs,
// persistence, and federation all program against. Gamma, MASK, and
// cut-and-paste each implement it through a ShardedCounter over their
// CounterScheme.
type LiveCounter = mining.LiveCounter

// CounterScheme identifies one perturbation scheme's counting contract
// (name, schema, parameters, fingerprint) and constructs its cores.
type CounterScheme = mining.CounterScheme

// GammaScheme, MaskCounterScheme, and CutPasteCounterScheme are the
// three CounterScheme implementations (gamma-diagonal, MASK, and
// cut-and-paste).
type (
	GammaScheme           = mining.GammaScheme
	MaskCounterScheme     = mining.MaskCounterScheme
	CutPasteCounterScheme = mining.CutPasteCounterScheme
)

// PointEstimate is one scheme-reconstructed count estimate with its
// standard error — the shape every scheme's query estimator answers in.
type PointEstimate = mining.PointEstimate

// ShardedCounter is the lock-striped scheme-generic live counter used
// by the collection service's concurrent ingestion path. It carries a
// monotonic snapshot version (Version, SnapshotVersioned) that advances
// with every ingested record, letting callers cache mining results for
// as long as the counter content is provably unchanged — the mechanism
// behind the collection service's asynchronous mining jobs — and
// answers raw perturbed match counts (PerturbedSupports) and
// scheme-correct query estimates (Estimates) without scanning records.
type ShardedCounter = mining.ShardedCounter

// MaskCounter reconstructs supports under MASK perturbation.
type MaskCounter = mining.MaskCounter

// CutPasteCounter reconstructs supports under C&P perturbation.
type CutPasteCounter = mining.CutPasteCounter
